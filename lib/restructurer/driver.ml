(** The restructurer driver: fortran77 in, Cedar Fortran out.

    For every loop nest the driver runs the analyses, decides which
    dependences each enabled technique removes, asks the cost model to
    rank the legal execution modes (bounded by the candidate-version
    limit), applies the transformations of the winner, and records a
    report used by the experiment harness.  The structure follows §3–4 of
    the paper: recognition (dependences, privatization, reductions,
    GIVs, recurrences) → optimization alternatives (X/S/C/vector modes,
    DOACROSS with the synchronization delay factor, two-version loops
    under a run-time test) → globalization. *)

open Fortran
open Analysis
module SSet = Ast_utils.SSet
module SMap = Ast_utils.SMap

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type loop_report = {
  r_unit : string;
  r_index : string;
  r_depth : int;
  r_decision : string;
  r_mode : Cost_model.mode option;
  r_techniques : string list;
  r_blockers : string list;
  r_versions : int;  (** candidate versions considered *)
}

type result = {
  program : Ast.program;
  reports : loop_report list;
  inline_failures : Transform.Inline.failure list;
}

(* ------------------------------------------------------------------ *)
(* Per-loop analysis                                                   *)
(* ------------------------------------------------------------------ *)

type avail = { spread : bool; cluster : bool }

type loop_analysis = {
  a_blockers : string list;
  a_priv_scalars : (string * Ast.dtype) list;
  a_last_values : string list;
  a_scalar_reds : Transform.Reduction_par.scalar_red list;
  a_array_reds : Transform.Reduction_par.array_red list;
  a_priv_arrays : (string * Ast.dtype * (Ast.expr * Ast.expr) list) list;
  a_givs : Giv.closed_form list;
  a_doacross : Transform.Doacross.plan option;
  a_sync_fraction : float;
  a_rt_condition : Ast.expr option;
  a_library : Ast.stmt list option;
  a_techniques : string list;
}

exception Interrupted

type ctx = {
  opts : Options.t;
  syms : Symbols.t;
  interproc : Interproc.t;
  unit_name : string;
  interrupt : unit -> bool;  (** polled per loop nest; true aborts the job *)
  memo : loop_report Memo.t option;  (** shared nest-level memo table *)
  mutable reports : loop_report list;
}

(* one metrics counter per driver verdict:
   "serial (cost model)" -> driver_decision_serial_cost_model_total *)
let decision_slug s =
  let b = Buffer.create (String.length s) in
  let last_us = ref true in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' ->
          Buffer.add_char b c;
          last_us := false
      | 'A' .. 'Z' ->
          Buffer.add_char b (Char.lowercase_ascii c);
          last_us := false
      | _ ->
          if not !last_us then begin
            Buffer.add_char b '_';
            last_us := true
          end)
    s;
  let s = Buffer.contents b in
  if String.length s > 0 && s.[String.length s - 1] = '_' then
    String.sub s 0 (String.length s - 1)
  else s

(* every decision goes through here: prepends the report and bumps the
   per-verdict counter (loop granularity, so registry lookup cost is
   immaterial) *)
let record (ctx : ctx) (r : loop_report) =
  ctx.reports <- r :: ctx.reports;
  Obs.Metrics.incr
    (Obs.Metrics.counter Obs.Metrics.global
       ~help:"loops decided, by driver verdict"
       (Printf.sprintf "driver_decision_%s_total" (decision_slug r.r_decision)))

(* after the fact, stamp the loop span with the newest report recorded for
   (index, depth) since [before] — the driver's verdict for this nest *)
let annotate_decision sp ~before (ctx : ctx) ~index ~depth =
  if Obs.Trace.enabled () then begin
    let rec find l =
      if l == before then None
      else
        match l with
        | [] -> None
        | r :: tl ->
            if r.r_index = index && r.r_depth = depth then Some r else find tl
    in
    match find ctx.reports with
    | None -> ()
    | Some r ->
        Obs.Trace.attr sp "decision" r.r_decision;
        (match r.r_mode with
        | Some m -> Obs.Trace.attr sp "mode" (Cost_model.show_mode m)
        | None -> ());
        Obs.Trace.count sp "versions" r.r_versions
  end

let reduction_site_count v body =
  Ast_utils.fold_stmts
    (fun n s ->
      match Scalars.reduction_form v (Ast_utils.strip_labels_stmt s) with
      | Some _ -> n + 1
      | None -> n)
    0 body

(* are the CALLs in this body safe to run in parallel iterations?  needs
   interprocedural summaries: callee pure, and writes only through array
   actuals subscripted by loop-variant expressions *)
let calls_parallel_safe ctx ~index body =
  let ok = ref true in
  let check name args =
    match Interproc.find ctx.interproc name with
    | None ->
        if
          List.mem
            (String.lowercase_ascii name)
            [ "await"; "advance"; "lock"; "unlock" ]
        then ()
        else ok := false
    | Some s ->
        if not s.Interproc.s_pure then ok := false
        else
          List.iteri
            (fun k arg ->
              let defs =
                k < Array.length s.Interproc.s_formal_def
                && s.Interproc.s_formal_def.(k)
              in
              if defs then
                match arg with
                | Ast.Idx (_, subs) ->
                    (* written element must move with the loop *)
                    if
                      not
                        (List.exists
                           (fun e -> SSet.mem index (Ast_utils.expr_vars e))
                           subs)
                    then ok := false
                | Ast.Var _ | _ -> ok := false)
            args
  in
  Ast_utils.fold_stmts
    (fun () s ->
      match s with
      | Ast.CallSt (n, args) -> check n args
      | Ast.Assign (_, e) ->
          Ast_utils.fold_expr
            (fun () e ->
              match e with
              | Ast.Call (n, args) when not (Ast.is_intrinsic n) -> check n args
              | _ -> ())
            () e
      | _ -> ())
    () body;
  !ok

(* disequality facts implied by a condition: (a, b) meaning a <> b *)
let rec ne_facts_of_cond pos (c : Ast.expr) : (string * string) list =
  match c with
  | Ast.Bin (Ast.And, a, b) when pos ->
      ne_facts_of_cond pos a @ ne_facts_of_cond pos b
  | Ast.Bin (Ast.Or, a, b) when not pos ->
      ne_facts_of_cond pos a @ ne_facts_of_cond pos b
  | Ast.Bin (Ast.Ne, Ast.Var a, Ast.Var b) when pos -> [ (a, b) ]
  | Ast.Bin (Ast.Eq, Ast.Var a, Ast.Var b) when not pos -> [ (a, b) ]
  | Ast.Bin ((Ast.Lt | Ast.Gt), Ast.Var a, Ast.Var b) when pos -> [ (a, b) ]
  | Ast.Un (Ast.Not, c) -> ne_facts_of_cond (not pos) c
  | _ -> []

(* facts implied by the loop's own bounds: DO i = x+c, ... with c >= 1
   gives i <> x; DO i = ..., x-c gives i <> x *)
let bound_facts (h : Ast.do_header) : (string * string) list =
  let from_bound e lo_side =
    match Affine.of_expr e with
    | Some a -> (
        match Affine.vars a with
        | [ x ] when Affine.coeff x a = 1 ->
            if (lo_side && a.Affine.const >= 1)
               || ((not lo_side) && a.Affine.const <= -1)
            then [ (h.Ast.index, x) ]
            else []
        | _ -> [])
    | None -> []
  in
  if h.Ast.step = None || h.Ast.step = Some (Ast.Int 1) then
    from_bound h.Ast.lo true @ from_bound h.Ast.hi false
  else []

(** Analyze one loop for parallelizability under the enabled techniques. *)
let analyze_loop_inner (ctx : ctx) ~(live_after : string -> bool)
    ~facts (h : Ast.do_header) (body : Ast.stmt list) : loop_analysis =
  let tech = ctx.opts.Options.techniques in
  let used = ref [] in
  let use t = if not (List.mem t !used) then used := t :: !used in
  let lvl = Loops.level_of_header h in
  let index = h.Ast.index in
  let blockers = ref [] in
  let block b = if not (List.mem b !blockers) then blockers := b :: !blockers in

  (* hard blockers *)
  if Ast_utils.contains_goto body then block "goto in body";
  if Ast_utils.contains_io body then block "I/O in body";
  (* EQUIVALENCE makes distinct names alias: any write to an equivalenced
     object could touch storage the tests attribute to another name
     (paper §3.2: placement and analysis are "complicated by EQUIVALENCE
     and COMMON block relations") *)
  SSet.iter
    (fun v ->
      match Symbols.lookup ctx.syms v with
      | Some sym when sym.Symbols.s_equiv ->
          block (Printf.sprintf "%s is EQUIVALENCEd" v)
      | _ -> ())
    (Ast_utils.writes_of body);
  if Ast_utils.contains_call body then begin
    if tech.Options.interprocedural then begin
      if calls_parallel_safe ctx ~index body then use "interprocedural"
      else block "unsafe call"
    end
    else block "call in body"
  end;

  (* library substitution first: a recognized recurrence is handled whole *)
  let library =
    if tech.Options.recurrence_substitution then
      match Transform.Recurrence_sub.apply h body with
      | Some stmts -> (
          match Recurrence.recognize index body with
          | Some (Recurrence.Linear_recurrence _) ->
              use "recurrence library";
              Some stmts
          | Some (Recurrence.Dotproduct _) | Some (Recurrence.Minmax_search _)
            ->
              use "reduction library";
              Some stmts
          | None -> None)
      | None -> None
    else None
  in

  (* scalar classification *)
  let scl = Scalars.classify ~index ~live_after body in
  let priv_scalars = ref [] in
  let last_values = ref [] in
  let scalar_reds = ref [] in
  let givs = ref [] in
  let inner_indices =
    List.map (fun h -> h.Ast.index) (Loops.inner_loops body)
  in
  (* names the body writes outside CALL statements *)
  let writes_excl_calls =
    Ast_utils.fold_stmts
      (fun acc s ->
        match s with
        | Ast.CallSt _ -> acc
        | s ->
            (* collect this statement's own write, not nested calls *)
            (match s with
            | Ast.Assign (l, _) -> SSet.add (Ast_utils.lhs_name l) acc
            | Ast.Do (h, _) -> SSet.add h.Ast.index acc
            | Ast.Read ls ->
                List.fold_left
                  (fun acc l -> SSet.add (Ast_utils.lhs_name l) acc)
                  acc ls
            | _ -> acc))
      SSet.empty body
  in
  (* names calls may define, per the interprocedural summaries *)
  let call_defined =
    Ast_utils.fold_stmts
      (fun acc s ->
        match s with
        | Ast.CallSt (nm, args) -> (
            match Interproc.call_effect ctx.interproc nm args with
            | Some (_, defs) -> SSet.union acc defs
            | None ->
                List.fold_left
                  (fun acc a ->
                    match a with
                    | Ast.Var v | Ast.Idx (v, _) -> SSet.add v acc
                    | _ -> acc)
                  acc args)
        | _ -> acc)
      SSet.empty body
  in
  SMap.iter
    (fun v cls ->
      match cls with
      | _ when List.mem_assoc v ctx.syms.Symbols.params ->
          (* PARAMETER constants are never written *)
          ()
      | Scalars.Shared_dep
        when tech.Options.interprocedural
             && (not (SSet.mem v writes_excl_calls))
             && not (SSet.mem v call_defined) ->
          (* only "written" through call arguments the summaries prove
             read-only: actually a read-only scalar *)
          ()
      | _ when List.mem v inner_indices ->
          (* inner loop indices are register-resident: nothing to do *)
          ()
      | Scalars.Privatizable { live_out } ->
          if tech.Options.scalar_privatization then begin
            use "scalar privatization";
            priv_scalars :=
              (v, Symbols.dtype_of ctx.syms v) :: !priv_scalars;
            if live_out then
              if Scalars.last_write_unconditional v body then begin
                use "last-value assignment";
                last_values := v :: !last_values
              end
              else block (Printf.sprintf "scalar %s: conditional last value" v)
          end
          else block (Printf.sprintf "scalar %s reused" v)
      | Scalars.Reduction op ->
          let sites = reduction_site_count v body in
          let allowed =
            if sites <= 1 then tech.Options.simple_reduction
            else tech.Options.generalized_reduction
          in
          if allowed then begin
            use (if sites <= 1 then "scalar reduction" else "multi-statement reduction");
            scalar_reds :=
              {
                Transform.Reduction_par.sr_var = v;
                sr_op = op;
                sr_type = Symbols.dtype_of ctx.syms v;
              }
              :: !scalar_reds
          end
          else block (Printf.sprintf "reduction %s not recognized" v)
      | Scalars.Induction _ -> (
          match Giv.recognize ~lvl v body with
          | Some cf when not (Transform.Giv_subst.uses_follow_update v body) ->
              ignore cf;
              block (Printf.sprintf "induction %s read before update" v)
          | Some cf ->
              let flat_const_additive =
                match Ast_utils.const_eval [] cf.Giv.g_at_use with
                | _ -> (
                    (* flat additive iff the closed form is affine *)
                    match Affine.of_expr cf.Giv.g_at_use with
                    | Some _ -> true
                    | None -> false)
              in
              if flat_const_additive && tech.Options.simple_induction then begin
                use "induction substitution";
                givs := cf :: !givs
              end
              else if (not flat_const_additive) && tech.Options.giv_substitution
              then begin
                use "generalized induction variable";
                givs := cf :: !givs
              end
              else block (Printf.sprintf "induction %s" v)
          | None -> block (Printf.sprintf "induction %s unrecognized" v))
      | Scalars.Shared_dep -> block (Printf.sprintf "scalar %s carried" v))
    scl.Scalars.classes;

  (* dependence testing with induction closed forms *)
  let env =
    List.fold_left
      (fun acc cf ->
        match Affine.of_expr cf.Giv.g_at_use with
        | Some a -> SMap.add cf.Giv.g_var a acc
        | None -> acc)
      SMap.empty !givs
  in
  let injective =
    List.fold_left
      (fun acc cf ->
        if cf.Giv.g_monotonic then SSet.add cf.Giv.g_var acc else acc)
      SSet.empty !givs
  in
  let inner = List.map (fun h -> h.Ast.index) (Loops.inner_loops body) in
  (* a body that is entirely one guarded block contributes its guard's
     facts (sound: the guard dominates every reference; refused when the
     condition itself references arrays) *)
  let body_guard_facts =
    match List.map Ast_utils.strip_labels_stmt body with
    | [ Ast.If (c, _, []) ]
      when Ast_utils.fold_expr
             (fun acc e ->
               acc || match e with Ast.Idx _ | Ast.Section _ -> true | _ -> false)
             false c
           = false ->
        ne_facts_of_cond true c
    | _ -> []
  in
  let facts = facts @ body_guard_facts in
  (* facts from enclosing IF guards and this loop's bounds stay valid only
     if neither side is redefined in the body *)
  let written = Ast_utils.writes_of body in
  let disequal =
    List.filter
      (fun (a, b) ->
        (not (SSet.mem a written)) && not (SSet.mem b written))
      (facts @ bound_facts h)
    |> List.filter (fun (a, b) -> a <> h.Ast.index || not (SSet.mem b written))
  in
  let trip =
    match
      (Ast_utils.const_eval ctx.syms.Symbols.params h.Ast.lo,
       Ast_utils.const_eval ctx.syms.Symbols.params h.Ast.hi)
    with
    | Some l, Some hi when h.Ast.step = None || h.Ast.step = Some (Ast.Int 1)
      ->
        Some (hi - l + 1)
    | _ -> None
  in
  let refs = Loops.collect_refs body in
  let deps =
    Depend.dependences ~injective ~disequal
      ~invariant:(fun v -> not (SSet.mem v written))
      ~env ~index ~inner ~trip refs
  in
  let carried = Depend.carried deps in
  if injective <> SSet.empty then use "monotonic GIV disambiguation";

  (* which arrays still carry dependences *)
  let dep_arrays =
    List.map (fun d -> d.Depend.d_array) carried |> List.sort_uniq compare
  in
  let priv_arrays = ref [] in
  let array_reds = ref [] in
  let rt_arrays = ref [] in
  let remaining =
    List.filter
      (fun a ->
        (* array privatization *)
        if
          tech.Options.array_privatization
          && (not (live_after a))
          && Array_private.privatizable ~outer_index:index a body
        then begin
          use "array privatization";
          (match Symbols.lookup ctx.syms a with
          | Some s when s.Symbols.s_dims <> [] ->
              priv_arrays := (a, s.Symbols.s_type, s.Symbols.s_dims) :: !priv_arrays
          | _ ->
              priv_arrays := (a, Ast.Real, [ (Ast.Int 1, Ast.Int 1024) ]) :: !priv_arrays);
          false
        end
        else if
          (* array reductions *)
          tech.Options.generalized_reduction
          &&
          match Array_reduction.recognize a body with
          | Some _ -> true
          | None -> false
        then begin
          use "array reduction";
          (match (Array_reduction.recognize a body, Symbols.lookup ctx.syms a) with
          | Some r, Some s when s.Symbols.s_dims <> [] ->
              array_reds :=
                {
                  Transform.Reduction_par.arr_name = a;
                  arr_op = r.Array_reduction.ar_op;
                  arr_type = s.Symbols.s_type;
                  arr_dims = s.Symbols.s_dims;
                }
                :: !array_reds
          | _ -> block (Printf.sprintf "array %s dims unknown" a));
          false
        end
        else true)
      dep_arrays
  in
  (* run-time dependence test for the remaining symbolic subscripts *)
  let remaining =
    if tech.Options.runtime_dep_test then
      List.filter
        (fun a ->
          let blocked_sym =
            List.exists
              (fun d ->
                d.Depend.d_array = a
                &&
                match d.Depend.d_reason with
                | Depend.Symbolic _ | Depend.Non_affine -> true
                | _ -> false)
              carried
          in
          if blocked_sym then begin
            let levels =
              lvl :: List.map Loops.level_of_header (Loops.inner_loops body)
            in
            match Runtime_test.candidate_for ~levels ~body a with
            | Some c ->
                use "run-time dependence test";
                rt_arrays := c :: !rt_arrays;
                false
            | None -> true
          end
          else true)
        remaining
    else remaining
  in
  List.iter (fun a -> block (Printf.sprintf "array %s carried dep" a)) remaining;

  (* DOACROSS plan from the dependences still standing after privatization
     and reduction removal (those transforms compose with the DOACROSS) *)
  let remaining_deps =
    List.filter (fun d -> List.mem d.Depend.d_array remaining) carried
  in
  let doacross_plan =
    if tech.Options.doacross then Transform.Doacross.plan_of_deps remaining_deps
    else None
  in
  let sync_fraction =
    match doacross_plan with
    | Some p -> Transform.Doacross.sync_fraction p body
    | None -> 1.0
  in
  let rt_condition =
    match !rt_arrays with
    | [] -> None
    | cs ->
        Some
          (List.fold_left
             (fun acc c -> Ast.Bin (Ast.And, acc, c.Runtime_test.rt_condition))
             (List.hd cs).Runtime_test.rt_condition
             (List.tl cs))
  in
  {
    a_blockers = List.rev !blockers;
    a_priv_scalars = List.rev !priv_scalars;
    a_last_values = List.rev !last_values;
    a_scalar_reds = List.rev !scalar_reds;
    a_array_reds = List.rev !array_reds;
    a_priv_arrays = List.rev !priv_arrays;
    a_givs = List.rev !givs;
    a_doacross = doacross_plan;
    a_sync_fraction = sync_fraction;
    a_rt_condition = rt_condition;
    a_library = library;
    a_techniques = List.rev !used;
  }

let analyze_loop (ctx : ctx) ~(live_after : string -> bool) ?(facts = [])
    (h : Ast.do_header) (body : Ast.stmt list) : loop_analysis =
  Obs.Trace.with_span "analyze"
    ~attrs:[ ("unit", ctx.unit_name); ("index", h.Ast.index) ]
    (fun sp ->
      let a = analyze_loop_inner ctx ~live_after ~facts h body in
      if a.a_techniques <> [] then
        Obs.Trace.attr sp "techniques" (String.concat "," a.a_techniques);
      Obs.Trace.count sp "blockers" (List.length a.a_blockers);
      a)

(* ------------------------------------------------------------------ *)
(* Loop transformation                                                 *)
(* ------------------------------------------------------------------ *)

(* is an inner loop DOALL-able (for choosing SDO/CDO nests)? cheap check *)
let inner_doallable ctx ~live_after ~facts (body : Ast.stmt list) : bool =
  match body with
  | [ s ] | [ s; Ast.Continue ] -> (
      match Ast_utils.strip_labels_stmt s with
      | Ast.Do (h, blk) when h.Ast.cls = Ast.Seq ->
          let a = analyze_loop ctx ~live_after ~facts h blk.Ast.body in
          a.a_blockers = [] && a.a_rt_condition = None
      | _ -> false)
  | _ -> false

(** Transform one sequential loop according to the analysis and the cost
    model, then (under [Options.validate]) re-verify the emitted
    statements with the independent checker — a loop that fails is
    demoted back to serial with the validator's findings recorded as
    blockers in its report.  Returns replacement statements. *)
let rec transform_loop (ctx : ctx) ~(avail : avail) ~(after_reads : SSet.t)
    ~(facts : (string * string) list) ~depth (h : Ast.do_header)
    (blk : Ast.block) : Ast.stmt list =
  Obs.Trace.with_span "loop"
    ~attrs:
      [
        ("unit", ctx.unit_name);
        ("index", h.Ast.index);
        ("depth", string_of_int depth);
      ]
    (fun sp ->
      let before = ctx.reports in
      let stmts =
        transform_loop_memo ctx sp ~avail ~after_reads ~facts ~depth h blk
      in
      let result =
        if not ctx.opts.Options.validate then stmts
        else
          match validator_issues ctx ~facts stmts with
          | [] -> stmts
          | issues ->
              record ctx
                {
                  r_unit = ctx.unit_name;
                  r_index = h.Ast.index;
                  r_depth = depth;
                  r_decision = "demoted (validator)";
                  r_mode = None;
                  r_techniques = [];
                  r_blockers = List.map (fun i -> i.Validate.v_what) issues;
                  r_versions = 1;
                };
              (* rebuild from the untransformed loop; inner loops
                 re-transform (and re-validate) individually *)
              serial_with_inner ctx ~avail ~after_reads ~facts ~depth h blk
      in
      annotate_decision sp ~before ctx ~index:h.Ast.index ~depth;
      result)

(* Consult the shared nest memo around [transform_loop_raw].  A hit
   replays the stored statements and reports with names mapped into this
   call site (fresh names re-drawn from the live counter, so numbering
   matches a direct run exactly); a miss runs the transformation with the
   fresh-name stream logged and stores the result.  The validator wrapper
   above stays live either way: demotion of THIS nest is never cached,
   only re-derived. *)
and transform_loop_memo ctx sp ~avail ~after_reads ~facts ~depth h blk =
  match ctx.memo with
  | None -> transform_loop_raw ctx ~avail ~after_reads ~facts ~depth h blk
  | Some memo -> (
      match
        Memo.prepare ~syms:ctx.syms ~interproc:ctx.interproc ~opts:ctx.opts
          ~avail:(avail.spread, avail.cluster) ~after_reads ~facts ~depth h
          blk
      with
      | None ->
          Obs.Trace.attr sp "memo" "bypass";
          transform_loop_raw ctx ~avail ~after_reads ~facts ~depth h blk
      | Some prep -> (
          match Memo.find memo prep with
          | Some entry ->
              if ctx.interrupt () then raise Interrupted;
              Obs.Trace.attr sp "memo" "hit";
              let rp = Memo.replay entry prep ~fresh:Ast_utils.fresh_name in
              (* oldest first, so ctx.reports ends up in the same order a
                 direct run would leave it *)
              List.iter
                (fun (r : loop_report) ->
                  record ctx
                    {
                      r with
                      r_unit = ctx.unit_name;
                      r_index = rp.Memo.rp_rename r.r_index;
                      r_depth = r.r_depth + depth;
                      r_blockers = List.map rp.Memo.rp_text r.r_blockers;
                    })
                (List.rev entry.Memo.e_reports);
              rp.Memo.rp_stmts
          | None ->
              Obs.Trace.attr sp "memo" "miss";
              let before = ctx.reports in
              let log = ref [] in
              let stmts =
                Ast_utils.with_fresh_hook
                  (fun prefix name -> log := (prefix, name) :: !log)
                  (fun () ->
                    transform_loop_raw ctx ~avail ~after_reads ~facts ~depth
                      h blk)
              in
              (* reports recorded during this nest's extent, newest first *)
              let rec added acc l =
                if l == before then List.rev acc
                else
                  match l with
                  | [] -> List.rev acc (* unreachable: only prepends *)
                  | r :: tl -> added (r :: acc) tl
              in
              let reports =
                List.map
                  (fun (r : loop_report) ->
                    { r with r_unit = ""; r_depth = r.r_depth - depth })
                  (added [] ctx.reports)
              in
              Memo.store memo prep ~stmts ~reports ~fresh:(List.rev !log);
              stmts))

and validator_issues ctx ~facts stmts =
  Obs.Trace.with_span "validate" (fun sp ->
      let issues =
        Validate.check_stmts_in ~syms:ctx.syms ~interproc:ctx.interproc
          ~unit_name:ctx.unit_name ~facts stmts
      in
      Obs.Trace.count sp "issues" (List.length issues);
      issues)

and transform_loop_raw (ctx : ctx) ~(avail : avail) ~(after_reads : SSet.t)
    ~(facts : (string * string) list) ~depth (h : Ast.do_header)
    (blk : Ast.block) : Ast.stmt list =
  if ctx.interrupt () then raise Interrupted;
  let opts = ctx.opts in
  let tech = opts.Options.techniques in
  let body = blk.Ast.body in
  let live_after v =
    SSet.mem v after_reads
    || SSet.mem v (Symbols.interface_vars ctx.syms)
  in
  let a = analyze_loop ctx ~live_after ~facts h body in
  let lvl = Loops.level_of_header h in
  let profile = Cost_model.profile ~assumed_trip:opts.Options.assumed_trip lvl body in
  let report decision mode techniques versions =
    record ctx
      {
        r_unit = ctx.unit_name;
        r_index = h.Ast.index;
        r_depth = depth;
        r_decision = decision;
        r_mode = mode;
        r_techniques = techniques;
        r_blockers = a.a_blockers;
        r_versions = versions;
      }
  in
  (* library substitution wins outright when available; the cross-machine
     library routines only make sense at the top parallel level — inside a
     parallel context, reduction loops use the vector reduction
     intrinsics instead (paper §2.1) *)
  let vector_red =
    if avail.spread && a.a_library <> None then None
    else Transform.Recurrence_sub.vector_reduce h body
  in
  let with_exit_value stmts =
    if live_after h.Ast.index then
      stmts @ [ Ast.Assign (Ast.LVar h.Ast.index, h.Ast.hi) ]
    else stmts
  in
  match (a.a_library, vector_red) with
  | Some stmts, _ when avail.spread && (a.a_blockers = [] || List.length a.a_blockers <= 1) ->
      report "library substitution" None a.a_techniques 2;
      with_exit_value stmts
  | _, Some stmts ->
      report "vector reduction intrinsic" (Some Cost_model.Vector)
        ("vector reduction" :: a.a_techniques)
        2;
      with_exit_value stmts
  | _ ->
      let doall_ok = a.a_blockers = [] in
      if doall_ok then begin
        (* candidate modes *)
        let vector_shape =
          Transform.Vectorize.vectorizable_shape body
          && a.a_scalar_reds = [] && a.a_array_reds = []
          && a.a_priv_arrays = [] && a.a_givs = []
        in
        let inner_par = inner_doallable ctx ~live_after ~facts body in
        (* the user-settable placement default for interface data
           (paper §3.2): under the cluster default, a loop referencing
           formals or COMMON data cannot be spread across clusters —
           that data has one copy per cluster *)
        let interface_blocked =
          ctx.opts.Options.placement_default = Transform.Globalize.Default_cluster
          && (let iface = Symbols.interface_vars ctx.syms in
              let used =
                SSet.union (Ast_utils.reads_of body) (Ast_utils.writes_of body)
              in
              not (SSet.is_empty (SSet.inter iface used)))
        in
        let candidates = ref [ Cost_model.Serial ] in
        let add m = candidates := m :: !candidates in
        if avail.spread && not interface_blocked then begin
          if tech.Options.stripmining && vector_shape then add Cost_model.Xdoall_strip;
          add Cost_model.Xdoall_plain;
          if inner_par then
            add (Cost_model.Sdo_cdo_mode { vector_inner = false })
        end;
        if avail.cluster || avail.spread then begin
          add (Cost_model.Cdoall_mode { vector_inner = false });
          if vector_shape && profile.Cost_model.inner_trip = 1 then
            add (Cost_model.Cdoall_mode { vector_inner = true })
        end;
        if vector_shape then add Cost_model.Vector;
        let candidates =
          let limited = ref [] and n = ref 0 in
          List.iter
            (fun m ->
              if !n < opts.Options.max_versions then begin
                limited := m :: !limited;
                incr n
              end)
            !candidates;
          !limited
        in
        (* reduction merges serialize across processors: charge them *)
        let parallel_overhead =
          let cfg = opts.Options.machine in
          let procs = float_of_int (Machine.Config.total_processors cfg) in
          let arr_elems =
            List.fold_left
              (fun acc (r : Transform.Reduction_par.array_red) ->
                acc
                +. List.fold_left
                     (fun acc (lo, hi) ->
                       match
                         ( Ast_utils.const_eval ctx.syms.Symbols.params lo,
                           Ast_utils.const_eval ctx.syms.Symbols.params hi )
                       with
                       | Some l, Some h -> acc +. float_of_int (max 0 (h - l + 1))
                       | _ -> acc +. float_of_int opts.Options.assumed_trip)
                     0.0 r.Transform.Reduction_par.arr_dims)
              0.0 a.a_array_reds
          in
          (procs
           *. ((arr_elems *. 2.0 *. cfg.Machine.Config.cluster_vector)
               +. float_of_int (List.length a.a_scalar_reds)
                  *. cfg.Machine.Config.cluster_scalar
               +. (2.0 *. cfg.Machine.Config.lock_cost)))
          +. (arr_elems *. cfg.Machine.Config.cluster_vector)
        in
        let parallel_overhead =
          if a.a_array_reds = [] && a.a_scalar_reds = [] then 0.0
          else parallel_overhead
        in
        (* a run-time-tested loop exists to be spread machine-wide: its
           data will be globalized, so cluster modes (costed as if the
           data stayed local) must not be chosen *)
        let candidates =
          if a.a_rt_condition <> None && avail.spread then
            List.filter
              (function
                | Cost_model.Cdoall_mode _ | Cost_model.Vector -> false
                | _ -> true)
              candidates
          else candidates
        in
        let ranked =
          Cost_model.rank
            ~inner_vector:(inner_loops_vectorize body)
            ~parallel_overhead opts.Options.machine profile candidates
        in
        let best, _ = List.hd ranked in
        let versions = List.length candidates in
        let techniques = a.a_techniques in
        let parallel_stmts =
          Obs.Trace.with_span "apply"
            ~attrs:[ ("mode", Cost_model.show_mode best) ]
            (fun _ ->
              apply_doall ctx ~avail ~after_reads ~facts ~depth a h blk best)
        in
        (* a parallelized loop no longer leaves its index variable with
           the sequential exit value; restore it when later code reads it
           (nonempty-trip assumption, as elsewhere) *)
        let parallel_stmts =
          if best <> Cost_model.Serial && live_after h.Ast.index then
            parallel_stmts @ [ Ast.Assign (Ast.LVar h.Ast.index, h.Ast.hi) ]
          else parallel_stmts
        in
        match a.a_rt_condition with
        | Some cond when best <> Cost_model.Serial ->
            report "two-version (run-time test)" (Some best) techniques versions;
            let serial = [ Ast.Do ({ h with Ast.cls = Ast.Seq }, blk) ] in
            [ Transform.Rt_twoversion.apply ~condition:cond
                ~parallel:parallel_stmts ~serial ]
        | _ ->
            (match best with
            | Cost_model.Serial -> report "serial (cost model)" (Some best) techniques versions
            | m -> report "parallelized" (Some m) techniques versions);
            parallel_stmts
      end
      else begin
        (* blocked: try DOACROSS, else serial with inner recursion *)
        match a.a_doacross with
        | Some plan
          when (avail.cluster || avail.spread)
               && List.for_all
                    (fun b ->
                      (* only array-distance blockers are synchronizable *)
                      String.length b > 6 && String.sub b 0 5 = "array")
                    a.a_blockers ->
            let mode =
              Cost_model.Doacross_mode
                {
                  sync_fraction = a.a_sync_fraction;
                  distance = plan.Transform.Doacross.dx_distance;
                }
            in
            let ranked =
              Cost_model.rank opts.Options.machine profile
                [ Cost_model.Serial; mode ]
            in
            if fst (List.hd ranked) = Cost_model.Serial then begin
              report "serial (doacross unprofitable)" None a.a_techniques 2;
              serial_with_inner ctx ~avail ~after_reads ~facts ~depth h blk
            end
            else begin
              report "doacross" (Some mode) ("doacross sync" :: a.a_techniques) 2;
              let da = Transform.Doacross.apply ~cls:Ast.Cdoall plan h blk in
              match da with
              | Ast.Do (h', blk') ->
                  let with_reds =
                    if a.a_scalar_reds <> [] || a.a_array_reds <> [] then
                      Transform.Reduction_par.apply ~scalars:a.a_scalar_reds
                        ~arrays:a.a_array_reds h' blk'
                    else da
                  in
                  let final =
                    match with_reds with
                    | Ast.Do (h'', blk'')
                      when a.a_priv_scalars <> [] || a.a_priv_arrays <> [] ->
                        Transform.Privatize.apply
                          {
                            Transform.Privatize.p_scalars = a.a_priv_scalars;
                            p_arrays = a.a_priv_arrays;
                            p_last_value = a.a_last_values;
                          }
                          h'' blk''
                    | s -> s
                  in
                  [ final ]
              | s -> [ s ]
            end
        | _ -> (
            (* loop distribution: split the body so the parallel part
               escapes the blocked part (advanced; paper §3.3) *)
            match
              if ctx.opts.Options.techniques.Options.loop_distribution then
                try_distribution ctx ~live_after ~facts h blk
              else None
            with
            | Some split_loops ->
                report "distributed" None ("loop distribution" :: a.a_techniques) 2;
                (* transform each split loop directly — re-entering the
                   statement walk would let the fusion pre-pass merge the
                   halves back together *)
                List.concat_map
                  (fun s ->
                    match s with
                    | Ast.Do (h', blk') ->
                        transform_loop ctx ~avail ~after_reads ~facts
                          ~depth:(depth + 1) h' blk'
                    | s -> [ s ])
                  split_loops
            | None ->
                report "serial (blocked)" None a.a_techniques 1;
                serial_with_inner ctx ~avail ~after_reads ~facts ~depth h blk)
      end

(* try to split a blocked loop into consecutive sub-loops such that at
   least one side is cleanly parallelizable *)
and try_distribution ctx ~live_after ~facts (h : Ast.do_header)
    (blk : Ast.block) : Ast.stmt list option =
  let body = blk.Ast.body in
  let n = List.length body in
  if n < 2 then None
  else
    let rec try_split k =
      if k >= n then None
      else
        match Transform.Distribution.distribute h body [ k; n - k ] with
        | Some ([ Ast.Do (ha, ba); Ast.Do (hb, bb) ] as loops) ->
            let clean hx bx =
              (analyze_loop ctx ~live_after ~facts hx bx.Ast.body).a_blockers
              = []
            in
            if clean ha ba || clean hb bb then Some loops else try_split (k + 1)
        | _ -> try_split (k + 1)
    in
    try_split 1

(* will the body's inner loops all become vector statements after the
   recursion?  informs the cost model's memory-cost choice for X/S modes *)
and inner_loops_vectorize (body : Ast.stmt list) : bool =
  let rec direct acc stmts =
    List.fold_left
      (fun acc s ->
        match Ast_utils.strip_labels_stmt s with
        | Ast.Do (h, blk) -> (h, blk) :: acc
        | Ast.If (_, t, e) -> direct (direct acc t) e
        | _ -> acc)
      acc stmts
  in
  let inners = direct [] body in
  inners <> []
  && List.for_all
       (fun (h, blk) ->
         Transform.Vectorize.vectorizable_shape blk.Ast.body
         || Transform.Recurrence_sub.vector_reduce h blk.Ast.body <> None)
       inners

(* What the next iteration of an enclosing loop reads: scalars exposed at
   the body's top, plus arrays that are NOT written-before-read within one
   iteration (a write-first work array is re-made each time around and so
   is dead on the back edge — exactly what lets it be privatized). *)
and back_edge_live ctx (h : Ast.do_header) (body : Ast.stmt list) : SSet.t =
  let exposed = Scalars.upward_exposed body in
  SSet.filter
    (fun v ->
      if Symbols.is_array ctx.syms v then
        not (Array_private.privatizable ~outer_index:h.Ast.index v body)
      else true)
    exposed

(* serial-semantics rewrite of a parallel loop that failed validation:
   preamble once, body as an ordinary DO with the cascade synchronization
   stripped, postamble once.  Loop-local declarations become ordinary
   unit variables (their fresh names cannot collide). *)
and serialize_parallel_loop (h : Ast.do_header) (blk : Ast.block) :
    Ast.stmt list =
  let strip stmts =
    Ast_utils.rewrite_stmts
      (fun s ->
        match s with
        | Ast.CallSt (n, _)
          when List.mem (String.lowercase_ascii n) [ "await"; "advance" ] ->
            []
        | s -> [ s ])
      stmts
  in
  strip blk.Ast.preamble
  @ [
      Ast.Do
        ( { h with Ast.cls = Ast.Seq; locals = [] },
          Ast.seq_block (strip blk.Ast.body) );
    ]
  @ strip blk.Ast.postamble

(* keep this loop serial but restructure inside it *)
and serial_with_inner ctx ~avail ~after_reads ~facts ~depth h blk =
  let facts = facts @ bound_facts h in
  let after_reads =
    SSet.union after_reads (back_edge_live ctx h blk.Ast.body)
  in
  let body =
    transform_stmts ctx ~avail ~after_reads ~facts ~depth:(depth + 1)
      blk.Ast.body
  in
  [ Ast.Do (h, { blk with Ast.body }) ]

(* apply the transforms of a DOALL decision *)
and apply_doall ctx ~avail ~after_reads ~facts ~depth (a : loop_analysis)
    (h : Ast.do_header) (blk : Ast.block) (mode : Cost_model.mode) :
    Ast.stmt list =
  let opts = ctx.opts in
  (* 1. induction-variable substitution *)
  let h, blk, after_giv =
    List.fold_left
      (fun (h, blk, after) cf ->
        match Transform.Giv_subst.apply cf h blk with
        | Some (Ast.Do (h', blk'), post) -> (h', blk', after @ post)
        | Some _ | None -> (h, blk, after))
      (h, blk, []) a.a_givs
  in
  match mode with
  | Cost_model.Serial ->
      (* cost model preferred serial; still restructure inner loops *)
      serial_with_inner ctx ~avail ~after_reads ~facts ~depth h blk
  | Cost_model.Vector -> (
      match Transform.Vectorize.vectorize_loop h blk.Ast.body with
      | Some stmts -> stmts @ after_giv
      | None -> serial_with_inner ctx ~avail ~after_reads ~facts ~depth h blk)
  | Cost_model.Xdoall_strip -> (
      let priv = List.map fst a.a_priv_scalars in
      match
        (* expanded scalars have no per-iteration identity after the loop:
           a live-out private needs the plain form's last-value copy *)
        if a.a_last_values <> [] then None
        else
          Transform.Stripmine.apply ~strip:opts.Options.strip ~cls:Ast.Xdoall
            ~private_scalars:priv h blk.Ast.body
      with
      | Some s -> (s :: after_giv)
      | None ->
          (* fall back to plain *)
          apply_doall ctx ~avail ~after_reads ~facts ~depth a h blk
            Cost_model.Xdoall_plain)
  | Cost_model.Cdoall_mode { vector_inner = true } -> (
      (* cluster-level stripmining: CDOALL over strips, vector body *)
      let priv = List.map fst a.a_priv_scalars in
      match
        if a.a_last_values <> [] then None
        else
          Transform.Stripmine.apply ~strip:opts.Options.strip ~cls:Ast.Cdoall
            ~private_scalars:priv h blk.Ast.body
      with
      | Some s -> s :: after_giv
      | None ->
          apply_doall ctx ~avail ~after_reads ~facts ~depth a h blk
            (Cost_model.Cdoall_mode { vector_inner = false }))
  | Cost_model.Xdoall_plain | Cost_model.Cdoall_mode _
  | Cost_model.Sdo_cdo_mode _ ->
      let cls =
        match mode with
        | Cost_model.Xdoall_plain -> Ast.Xdoall
        | Cost_model.Cdoall_mode _ -> Ast.Cdoall
        | _ -> Ast.Sdoall
      in
      (* recurse into the body first (inner loops become CDOALL/vector) *)
      let inner_avail =
        match cls with
        | Ast.Sdoall -> { spread = false; cluster = true }
        | _ -> { spread = false; cluster = false }
      in
      let body' =
        transform_stmts ctx ~avail:inner_avail
          ~after_reads:(SSet.union after_reads (back_edge_live ctx h blk.Ast.body))
          ~facts:(facts @ bound_facts h) ~depth:(depth + 1) blk.Ast.body
      in
      let blk = { blk with Ast.body = body' } in
      (* reductions *)
      let with_reds =
        if a.a_scalar_reds <> [] || a.a_array_reds <> [] then
          Transform.Reduction_par.apply ~scalars:a.a_scalar_reds
            ~arrays:a.a_array_reds { h with Ast.cls } blk
        else Ast.Do ({ h with Ast.cls }, blk)
      in
      (* privatization: only names still present after the inner recursion
         (vectorized inner loops consume their indices) *)
      let final =
        match with_reds with
        | Ast.Do (h', blk') ->
            let still_used =
              SSet.union
                (Ast_utils.reads_of blk'.Ast.body)
                (Ast_utils.writes_of blk'.Ast.body)
            in
            let scalars =
              List.filter (fun (v, _) -> SSet.mem v still_used) a.a_priv_scalars
            in
            let arrays =
              List.filter (fun (v, _, _) -> SSet.mem v still_used) a.a_priv_arrays
            in
            if scalars <> [] || arrays <> [] then
              Transform.Privatize.apply
                {
                  Transform.Privatize.p_scalars = scalars;
                  p_arrays = arrays;
                  p_last_value = a.a_last_values;
                }
                h' blk'
            else Ast.Do (h', blk')
        | s -> s
      in
      (final :: after_giv)
  | Cost_model.Doacross_mode _ ->
      (* not reached from the DOALL path *)
      serial_with_inner ctx ~avail ~after_reads ~facts ~depth h blk

(* ------------------------------------------------------------------ *)
(* Statement-list walk                                                 *)
(* ------------------------------------------------------------------ *)

and transform_stmts ctx ~avail ~after_reads ?(facts = []) ~depth
    (stmts : Ast.stmt list) : Ast.stmt list =
  (* optional fusion pre-pass over adjacent serial loops *)
  let stmts =
    if ctx.opts.Options.techniques.Options.loop_fusion then fuse_pass stmts
    else stmts
  in
  (* liveness after each statement: a variable is live if some later
     statement reads it before (definitely) redefining it *)
  let rec go stmts =
    match stmts with
    | [] -> ([], after_reads)
    | s :: rest ->
        let rest', _ = go rest in
        let here_after =
          SSet.union after_reads (Scalars.upward_exposed rest)
        in
        let s' =
          match s with
          | Ast.Do (h, blk) when h.Ast.cls = Ast.Seq ->
              transform_loop ctx ~avail ~after_reads:here_after ~facts ~depth h
                blk
          | Ast.Labeled (l, Ast.Do (h, blk)) when h.Ast.cls = Ast.Seq -> (
              match
                transform_loop ctx ~avail ~after_reads:here_after ~facts ~depth
                  h blk
              with
              | [] -> [ Ast.Labeled (l, Ast.Continue) ]
              | first :: more -> Ast.Labeled (l, first) :: more)
          | Ast.If (c, t, e) ->
              [
                Ast.If
                  ( c,
                    transform_stmts ctx ~avail ~after_reads:here_after
                      ~facts:(facts @ ne_facts_of_cond true c)
                      ~depth t,
                    transform_stmts ctx ~avail ~after_reads:here_after
                      ~facts:(facts @ ne_facts_of_cond false c)
                      ~depth e );
              ]
          | Ast.Do (h, blk)
            when h.Ast.cls <> Ast.Seq && ctx.opts.Options.validate ->
              (* an input (already-parallel) loop: verify it as written;
                 a failed check serializes it *)
              Obs.Trace.with_span "loop"
                ~attrs:
                  [
                    ("unit", ctx.unit_name);
                    ("index", h.Ast.index);
                    ("depth", string_of_int depth);
                  ]
                (fun sp ->
                  match validator_issues ctx ~facts [ s ] with
                  | [] -> [ s ]
                  | issues ->
                      record ctx
                        {
                          r_unit = ctx.unit_name;
                          r_index = h.Ast.index;
                          r_depth = depth;
                          r_decision = "demoted (validator)";
                          r_mode = None;
                          r_techniques = [];
                          r_blockers =
                            List.map (fun i -> i.Validate.v_what) issues;
                          r_versions = 1;
                        };
                      Obs.Trace.attr sp "decision" "demoted (validator)";
                      Obs.Trace.count sp "versions" 1;
                      serialize_parallel_loop h blk)
          | s -> [ s ]
        in
        (s' @ rest', here_after)
  in
  fst (go stmts)

and fuse_pass stmts =
  let rec go = function
    | (Ast.Do (_, _) as s1) :: rest -> (
        (* find the next loop with only replicable code between *)
        let rec split mid = function
          | (Ast.Do _ as s2) :: tail -> Some (List.rev mid, s2, tail)
          | (Ast.Assign (Ast.LVar _, _) as m) :: tail -> split (m :: mid) tail
          | _ -> None
        in
        match split [] rest with
        | Some (mid, s2, tail) -> (
            match Transform.Fusion.fuse_region s1 mid s2 with
            | Some fused -> go (fused :: tail)
            | None -> s1 :: go rest)
        | None -> s1 :: go rest)
    | s :: rest -> s :: go rest
    | [] -> []
  in
  go stmts

(* ------------------------------------------------------------------ *)
(* Unit / program entry points                                         *)
(* ------------------------------------------------------------------ *)

let restructure_unit ~(interrupt : unit -> bool) ?memo (opts : Options.t)
    (interproc : Interproc.t) (prog : Ast.program) (u : Ast.punit) :
    Ast.punit * loop_report list * Transform.Inline.failure list =
  if interrupt () then raise Interrupted;
  Obs.Trace.with_span "unit"
    ~attrs:[ ("name", u.Ast.u_name) ]
    (fun _ ->
      Ast_utils.reset_fresh ();
      let u, inline_failures =
        if opts.Options.techniques.Options.inline_expansion then
          Obs.Trace.with_span "inline" (fun _ ->
              Transform.Inline.inline_unit ~limits:opts.Options.inline_limits
                prog u)
        else (u, [])
      in
      let ctx =
        {
          opts;
          syms = Symbols.of_unit u;
          interproc;
          unit_name = u.Ast.u_name;
          interrupt;
          memo;
          reports = [];
        }
      in
      let body =
        transform_stmts ctx
          ~avail:{ spread = true; cluster = true }
          ~after_reads:SSet.empty ~depth:0 u.Ast.u_body
      in
      let u = { u with Ast.u_body = body } in
      let u =
        Obs.Trace.with_span "globalize" (fun _ ->
            Transform.Globalize.apply ~default:opts.Options.placement_default u)
      in
      (u, List.rev ctx.reports, inline_failures))

(** Restructure a whole program.  Besides the per-nest poll in
    [transform_loop_raw], the deadline hook rides the {!Fortran.Fuel}
    counter ticked inside the dependence tester's pair loop, so even one
    pathological nest (quadratic in references) aborts promptly. *)
let restructure ?(interrupt = fun () -> false) ?memo (opts : Options.t)
    (prog : Ast.program) : result =
  Fuel.with_hook (fun () -> if interrupt () then raise Interrupted)
  @@ fun () ->
  Obs.Trace.with_span "restructure" @@ fun _ ->
  let interproc =
    Obs.Trace.with_span "interproc" (fun _ -> Interproc.analyze prog)
  in
  let units, reports, fails =
    List.fold_left
      (fun (us, rs, fs) u ->
        match u.Ast.u_kind with
        | Ast.Program | Ast.Subroutine _ | Ast.Function _ ->
            let u', r, f =
              restructure_unit ~interrupt ?memo opts interproc prog u
            in
            (u' :: us, rs @ r, fs @ f))
      ([], [], []) prog
  in
  { program = List.rev units; reports; inline_failures = fails }

type memo = loop_report Memo.t

let create_memo ?capacity ?corrupt () : memo = Memo.create ?capacity ?corrupt ()
let memo_stats = Memo.stats

(* ------------------------------------------------------------------ *)
(* Report printing                                                     *)
(* ------------------------------------------------------------------ *)

let report_to_string (r : loop_report) =
  Printf.sprintf "%-10s DO %-6s depth %d  %-28s %-24s %s%s" r.r_unit r.r_index
    r.r_depth r.r_decision
    (match r.r_mode with
    | Some m -> Cost_model.show_mode m
    | None -> "-")
    (match r.r_techniques with
    | [] -> ""
    | ts -> "[" ^ String.concat ", " ts ^ "] ")
    (match r.r_blockers with
    | [] -> ""
    | bs -> "blocked: " ^ String.concat "; " bs)
