(** Restructurer configuration: technique sets and tunables.

    {!auto_1991} is the parallelizer as of March 1991 (the paper's
    "Automatically compiled" columns); {!advanced} adds every §4.1
    technique the authors applied by hand and declared automatable. *)

type techniques = {
  scalar_privatization : bool;
  scalar_expansion : bool;
  simple_induction : bool;  (** V = V + k, flat loops *)
  simple_reduction : bool;  (** single-statement scalar reductions *)
  doacross : bool;
  stripmining : bool;
  if_to_where : bool;
  inline_expansion : bool;
  loop_interchange : bool;
  recurrence_substitution : bool;
  (* --- §4.1 advanced techniques --- *)
  array_privatization : bool;
  generalized_reduction : bool;  (** multi-statement & array-element *)
  giv_substitution : bool;  (** geometric & triangular closed forms *)
  runtime_dep_test : bool;
  critical_sections : bool;
  interprocedural : bool;
  loop_fusion : bool;
  loop_distribution : bool;
}

type t = {
  techniques : techniques;
  machine : Machine.Config.t;
  max_versions : int;  (** candidate-version limit; the paper's 50 *)
  strip : int;
  inline_limits : Transform.Inline.limits;
  placement_default : Transform.Globalize.placement_default;
  assumed_trip : int;  (** trip-count guess for symbolic bounds *)
  validate : bool;
      (** re-verify every emitted parallel loop with the independent
          static checker; loops that fail are demoted to serial *)
  target : Codegen.Target.t;
      (** which surface syntax the service emits (default {!Codegen.Target.Cedar});
          part of the cache/memo identity *)
}

val base_techniques : techniques
val advanced_techniques : techniques

val make : techniques:techniques -> Machine.Config.t -> t
val auto_1991 : Machine.Config.t -> t
val advanced : Machine.Config.t -> t

val show_techniques : techniques -> string
val equal_techniques : techniques -> techniques -> bool
