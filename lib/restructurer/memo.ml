(** Nest-level memoization for the restructurer (the ROADMAP's "kill the
    hot-path tax").

    The driver's per-nest work — dependence analysis, technique
    recognition, cost-model ranking and the applied transformation — is a
    function of the nest itself plus a small slice of its context: the
    symbol-table rows of the names it touches, the interprocedural
    summaries of the routines it calls, the liveness of its names after
    the loop, the disequality facts over its names, and the options.  We
    digest exactly that slice into a key and cache the finished statements
    together with the decision reports, in a bounded LRU shared across
    jobs, so a program that shares loop nests with any previously seen
    program skips straight to the answer instead of missing the
    whole-program cache.

    Byte-identity with an unmemoized run is the contract (test_memo pins
    it corpus-wide).  Three mechanisms carry it:

    - the key alpha-renames symbols to their rank in sorted order, so two
      nests that differ only by an order-preserving renaming share an
      entry; order preservation matters because name-keyed maps iterate
      alphabetically and their order shows up in emitted declaration
      lists;
    - fresh names ([Ast_utils.fresh_name]) are not stored as text: the
      entry records the (prefix, name) stream the transformation drew,
      and a replay re-draws the same stream from the live per-unit
      counter, then maps stored names to the re-drawn ones;
    - report strings interpolate symbol names, so a renamed replay
      rewrites them token-wise; names that collide with the fixed words
      of the report templates (or with a called routine) make the entry
      [exact]-only — it is served solely to nests with identical
      spelling.

    Entries are checksummed like the service result cache: a stored
    entry whose marshalled digest no longer matches is dropped and
    counted, never served. *)

open Fortran
module SSet = Ast_utils.SSet
module SMap = Ast_utils.SMap

(* ------------------------------------------------------------------ *)
(* Key normalization                                                   *)
(* ------------------------------------------------------------------ *)

(* Words that appear verbatim in driver / analysis / validator report
   templates ("scalar %s reused", "call %s is not pure", ...).  A data
   name equal to one of these could not be renamed in a stored report
   string without ambiguity, so such entries are served exact-only. *)
let template_words =
  let words =
    [
      (* driver blockers / decisions *)
      "goto"; "in"; "body"; "i"; "o"; "is"; "equivalenced"; "unsafe";
      "call"; "scalar"; "conditional"; "last"; "value"; "reused";
      "reduction"; "not"; "recognized"; "induction"; "read"; "before";
      "update"; "unrecognized"; "carried"; "array"; "dims"; "unknown";
      "dep"; "library"; "substitution"; "vector"; "intrinsic"; "two";
      "version"; "run"; "time"; "test"; "serial"; "cost"; "model";
      "parallelized"; "doacross"; "unprofitable"; "sync"; "distributed";
      "loop"; "distribution"; "blocked"; "demoted"; "validator";
      (* vectorize failures *)
      "has"; "non"; "unit"; "stride"; "assigned"; "to"; "cannot";
      "vectorize";
      (* validator issues *)
      "no"; "summary"; "pure"; "written"; "the"; "parallel"; "but";
      "privatized"; "dependences"; "await"; "delay"; "factor";
      "constant"; "must"; "have"; "arguments"; "sequence"; "placed";
      "after"; "first"; "dependence"; "sink"; "advance"; "source";
      "unsynchronized"; "distance"; "on"; "preamble"; "postamble";
      "flow"; "anti"; "output"; "line";
    ]
  in
  List.fold_left (fun s w -> SSet.add w s) SSet.empty words

(* Fresh-name prefixes that are literals in the transforms rather than
   derived from a symbol name (stripmine, reduction_par, recurrence_sub). *)
let literal_prefixes = [ "i3_"; "iup_"; "mx_"; "jr_" ]

type names = { mutable data : SSet.t; mutable calls : SSet.t }

let rec scan_expr ns (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Num _ | Ast.Str _ | Ast.Bool _ -> ()
  | Ast.Var v -> ns.data <- SSet.add v ns.data
  | Ast.Idx (a, es) ->
      ns.data <- SSet.add a ns.data;
      List.iter (scan_expr ns) es
  | Ast.Section (a, dims) ->
      ns.data <- SSet.add a ns.data;
      List.iter (scan_section ns) dims
  | Ast.Call (f, es) ->
      ns.calls <- SSet.add f ns.calls;
      List.iter (scan_expr ns) es
  | Ast.Bin (_, a, b) ->
      scan_expr ns a;
      scan_expr ns b
  | Ast.Un (_, a) -> scan_expr ns a

and scan_section ns = function
  | Ast.Range (a, b, c) ->
      List.iter (Option.iter (scan_expr ns)) [ a; b; c ]
  | Ast.Elem e -> scan_expr ns e

let scan_lhs ns (l : Ast.lhs) =
  match l with
  | Ast.LVar v -> ns.data <- SSet.add v ns.data
  | Ast.LIdx (a, es) ->
      ns.data <- SSet.add a ns.data;
      List.iter (scan_expr ns) es
  | Ast.LSection (a, dims) ->
      ns.data <- SSet.add a ns.data;
      List.iter (scan_section ns) dims

let scan_decl ns (d : Ast.decl) =
  ns.data <- SSet.add d.Ast.d_name ns.data;
  List.iter
    (fun (lo, hi) ->
      scan_expr ns lo;
      scan_expr ns hi)
    d.Ast.d_dims

let rec scan_stmt ns (s : Ast.stmt) =
  match s with
  | Ast.Assign (l, e) ->
      scan_lhs ns l;
      scan_expr ns e
  | Ast.If (c, t, e) ->
      scan_expr ns c;
      List.iter (scan_stmt ns) t;
      List.iter (scan_stmt ns) e
  | Ast.Do (h, blk) ->
      scan_header ns h;
      scan_block ns blk
  | Ast.Where (c, body) ->
      scan_expr ns c;
      List.iter (scan_stmt ns) body
  | Ast.CallSt (f, es) ->
      ns.calls <- SSet.add f ns.calls;
      List.iter (scan_expr ns) es
  | Ast.Return | Ast.Stop | Ast.Continue | Ast.Goto _ -> ()
  | Ast.Labeled (_, s) -> scan_stmt ns s
  | Ast.Print es -> List.iter (scan_expr ns) es
  | Ast.Read ls -> List.iter (scan_lhs ns) ls

and scan_header ns (h : Ast.do_header) =
  ns.data <- SSet.add h.Ast.index ns.data;
  scan_expr ns h.Ast.lo;
  scan_expr ns h.Ast.hi;
  Option.iter (scan_expr ns) h.Ast.step;
  List.iter (scan_decl ns) h.Ast.locals

and scan_block ns (blk : Ast.block) =
  List.iter (scan_stmt ns) blk.Ast.preamble;
  List.iter (scan_stmt ns) blk.Ast.body;
  List.iter (scan_stmt ns) blk.Ast.postamble

(* ------------------------------------------------------------------ *)
(* Canonical serialization (the key text)                              *)
(* ------------------------------------------------------------------ *)

type ser = { buf : Buffer.t; slot : (string, int) Hashtbl.t }

let put_tag sr c = Buffer.add_char sr.buf c

let put_int sr n =
  Buffer.add_string sr.buf (string_of_int n);
  Buffer.add_char sr.buf ';'

let put_raw sr s =
  (* length-prefixed so "ab"+"c" never equals "a"+"bc" *)
  put_int sr (String.length s);
  Buffer.add_string sr.buf s

let put_name sr v =
  match Hashtbl.find_opt sr.slot v with
  | Some i ->
      put_tag sr '#';
      put_int sr i
  | None ->
      (* a name outside the collected closure (impossible by
         construction); keep the key total anyway *)
      put_tag sr '!';
      put_raw sr v

let rec put_expr sr (e : Ast.expr) =
  match e with
  | Ast.Int n ->
      put_tag sr 'i';
      put_int sr n
  | Ast.Num f ->
      put_tag sr 'f';
      put_raw sr (Printf.sprintf "%h" f)
  | Ast.Str s ->
      put_tag sr 's';
      put_raw sr s
  | Ast.Bool b -> put_tag sr (if b then 'T' else 'F')
  | Ast.Var v ->
      put_tag sr 'v';
      put_name sr v
  | Ast.Idx (a, es) ->
      put_tag sr 'x';
      put_name sr a;
      put_int sr (List.length es);
      List.iter (put_expr sr) es
  | Ast.Section (a, dims) ->
      put_tag sr 'S';
      put_name sr a;
      put_int sr (List.length dims);
      List.iter (put_section sr) dims
  | Ast.Call (f, es) ->
      put_tag sr 'c';
      put_raw sr f;
      put_int sr (List.length es);
      List.iter (put_expr sr) es
  | Ast.Bin (op, a, b) ->
      put_tag sr 'b';
      put_int sr
        (match op with
        | Ast.Add -> 0
        | Ast.Sub -> 1
        | Ast.Mul -> 2
        | Ast.Div -> 3
        | Ast.Pow -> 4
        | Ast.Eq -> 5
        | Ast.Ne -> 6
        | Ast.Lt -> 7
        | Ast.Le -> 8
        | Ast.Gt -> 9
        | Ast.Ge -> 10
        | Ast.And -> 11
        | Ast.Or -> 12);
      put_expr sr a;
      put_expr sr b
  | Ast.Un (op, a) ->
      put_tag sr 'u';
      put_int sr (match op with Ast.Neg -> 0 | Ast.Not -> 1);
      put_expr sr a

and put_section sr = function
  | Ast.Range (a, b, c) ->
      put_tag sr 'R';
      List.iter
        (fun o ->
          match o with
          | None -> put_tag sr '_'
          | Some e ->
              put_tag sr 'E';
              put_expr sr e)
        [ a; b; c ]
  | Ast.Elem e ->
      put_tag sr 'e';
      put_expr sr e

let put_opt_expr sr = function
  | None -> put_tag sr '_'
  | Some e ->
      put_tag sr 'E';
      put_expr sr e

let put_lhs sr (l : Ast.lhs) =
  match l with
  | Ast.LVar v ->
      put_tag sr 'V';
      put_name sr v
  | Ast.LIdx (a, es) ->
      put_tag sr 'X';
      put_name sr a;
      put_int sr (List.length es);
      List.iter (put_expr sr) es
  | Ast.LSection (a, dims) ->
      put_tag sr 'Z';
      put_name sr a;
      put_int sr (List.length dims);
      List.iter (put_section sr) dims

let put_dtype sr (t : Ast.dtype) =
  put_tag sr
    (match t with
    | Ast.Integer -> 'I'
    | Ast.Real -> 'R'
    | Ast.Double -> 'D'
    | Ast.Logical -> 'L'
    | Ast.Character -> 'C')

let put_vis sr (v : Ast.visibility) =
  put_tag sr
    (match v with Ast.Default -> 'd' | Ast.Global -> 'g' | Ast.Cluster -> 'k')

let put_decl sr (d : Ast.decl) =
  put_name sr d.Ast.d_name;
  put_dtype sr d.Ast.d_type;
  put_vis sr d.Ast.d_vis;
  put_int sr (List.length d.Ast.d_dims);
  List.iter
    (fun (lo, hi) ->
      put_expr sr lo;
      put_expr sr hi)
    d.Ast.d_dims

let rec put_stmt sr (s : Ast.stmt) =
  match s with
  | Ast.Assign (l, e) ->
      put_tag sr 'A';
      put_lhs sr l;
      put_expr sr e
  | Ast.If (c, t, e) ->
      put_tag sr 'J';
      put_expr sr c;
      put_stmts sr t;
      put_stmts sr e
  | Ast.Do (h, blk) ->
      put_tag sr 'O';
      put_header sr h;
      put_block sr blk
  | Ast.Where (c, body) ->
      put_tag sr 'W';
      put_expr sr c;
      put_stmts sr body
  | Ast.CallSt (f, es) ->
      put_tag sr 'K';
      put_raw sr f;
      put_int sr (List.length es);
      List.iter (put_expr sr) es
  | Ast.Return -> put_tag sr 'r'
  | Ast.Stop -> put_tag sr 'h'
  | Ast.Continue -> put_tag sr 'n'
  | Ast.Goto l ->
      put_tag sr 'G';
      put_int sr l
  | Ast.Labeled (l, s) ->
      put_tag sr 'L';
      put_int sr l;
      put_stmt sr s
  | Ast.Print es ->
      put_tag sr 'P';
      put_int sr (List.length es);
      List.iter (put_expr sr) es
  | Ast.Read ls ->
      put_tag sr 'Q';
      put_int sr (List.length ls);
      List.iter (put_lhs sr) ls

and put_stmts sr ss =
  put_int sr (List.length ss);
  List.iter (put_stmt sr) ss

and put_header sr (h : Ast.do_header) =
  put_name sr h.Ast.index;
  put_expr sr h.Ast.lo;
  put_expr sr h.Ast.hi;
  put_opt_expr sr h.Ast.step;
  put_int sr
    (match h.Ast.cls with
    | Ast.Seq -> 0
    | Ast.Cdoall -> 1
    | Ast.Sdoall -> 2
    | Ast.Xdoall -> 3
    | Ast.Cdoacross -> 4
    | Ast.Sdoacross -> 5
    | Ast.Xdoacross -> 6);
  put_int sr (List.length h.Ast.locals);
  List.iter (put_decl sr) h.Ast.locals

and put_block sr (blk : Ast.block) =
  put_stmts sr blk.Ast.preamble;
  put_stmts sr blk.Ast.body;
  put_stmts sr blk.Ast.postamble

(* ------------------------------------------------------------------ *)
(* Prepared lookups                                                    *)
(* ------------------------------------------------------------------ *)

type prep = {
  p_key : string;  (** digest of the normalized nest + context slice *)
  p_names : string array;  (** data names, sorted (slot i = rank i) *)
  p_safe : bool;  (** renamed serving is unambiguous for these names *)
}

(* Close the data-name set over the symbol metadata the driver consults:
   array dimension bounds and PARAMETER values mention further names. *)
let close_names (syms : Symbols.t) (ns : names) =
  let rec grow pending =
    match SSet.choose_opt pending with
    | None -> ()
    | Some v ->
        let before = ns.data in
        (match Symbols.lookup syms v with
        | Some s ->
            List.iter
              (fun (lo, hi) ->
                scan_expr ns lo;
                scan_expr ns hi)
              s.Symbols.s_dims
        | None -> ());
        (match List.assoc_opt v syms.Symbols.params with
        | Some e -> scan_expr ns e
        | None -> ());
        let fresh = SSet.diff ns.data before in
        grow (SSet.union (SSet.remove v pending) fresh)
  in
  grow ns.data

(* One digest per distinct options record, not per lookup: the driver
   hands every nest of a restructure call the same [opts], so a
   single-slot cache keyed by physical equality absorbs the per-nest
   marshal + digest (a measurable slice of the memo's lookup cost).
   The slot holds an immutable pair, so a racing reader sees either the
   old or the new binding — both correct. *)
let opts_digest_slot : (Options.t * string) option ref = ref None

let opts_digest (opts : Options.t) =
  match !opts_digest_slot with
  | Some (o, d) when o == opts -> d
  | _ ->
      (* inlining happens at unit level, before any nest reaches the
         memo: its limits are the one irrelevant knob *)
      let keyed =
        { opts with Options.inline_limits = Transform.Inline.default_limits }
      in
      let d = Digest.string (Marshal.to_string keyed [ Marshal.No_sharing ]) in
      opts_digest_slot := Some (opts, d);
      d

let size_cap = 1 lsl 16

let bypass_counter =
  lazy
    (Obs.Metrics.counter Obs.Metrics.global
       ~help:"nests not memoizable (oversized)" "memo_bypass_total")

(** Build the lookup key for one nest, or [None] (bypass) when the nest
    is too large to be worth caching. *)
let prepare ~(syms : Symbols.t) ~(interproc : Analysis.Interproc.t)
    ~(opts : Options.t) ~(avail : bool * bool) ~(after_reads : SSet.t)
    ~(facts : (string * string) list) ~(depth : int) (h : Ast.do_header)
    (blk : Ast.block) : prep option =
  let ns = { data = SSet.empty; calls = SSet.empty } in
  scan_header ns h;
  scan_block ns blk;
  close_names syms ns;
  let names = Array.of_list (SSet.elements ns.data) in
  let slot = Hashtbl.create (Array.length names * 2) in
  Array.iteri (fun i v -> Hashtbl.replace slot v i) names;
  let sr = { buf = Buffer.create 1024; slot } in
  put_header sr h;
  put_block sr blk;
  (* context slice: one row per name, in slot order *)
  Array.iter
    (fun v ->
      (match Symbols.lookup syms v with
      | None -> put_tag sr '?'
      | Some s ->
          put_tag sr '=';
          put_dtype sr s.Symbols.s_type;
          put_vis sr s.Symbols.s_vis;
          (match s.Symbols.s_common with
          | None -> put_tag sr '_'
          | Some c ->
              put_tag sr 'C';
              put_raw sr c);
          put_tag sr (if s.Symbols.s_process_common then 'p' else '.');
          put_tag sr (if s.Symbols.s_formal then 'f' else '.');
          put_tag sr (if s.Symbols.s_equiv then 'q' else '.');
          put_int sr (List.length s.Symbols.s_dims);
          List.iter
            (fun (lo, hi) ->
              put_expr sr lo;
              put_expr sr hi)
            s.Symbols.s_dims);
      (match List.assoc_opt v syms.Symbols.params with
      | None -> put_tag sr '_'
      | Some e ->
          put_tag sr 'P';
          put_expr sr e);
      put_tag sr (if SSet.mem v after_reads then 'a' else '.'))
    names;
  (* called routines: their transitively-closed summaries *)
  SSet.iter
    (fun f ->
      put_raw sr f;
      match Analysis.Interproc.find interproc f with
      | None -> put_tag sr '?'
      | Some s ->
          put_tag sr '=';
          Array.iter (fun b -> put_tag sr (if b then 'u' else '.')) s.Analysis.Interproc.s_formal_use;
          put_tag sr '|';
          Array.iter (fun b -> put_tag sr (if b then 'd' else '.')) s.Analysis.Interproc.s_formal_def;
          put_tag sr '|';
          List.iter (put_raw sr) (SSet.elements s.Analysis.Interproc.s_common_use);
          put_tag sr '|';
          List.iter (put_raw sr) (SSet.elements s.Analysis.Interproc.s_common_def);
          put_tag sr (if s.Analysis.Interproc.s_has_io then 'I' else '.');
          put_tag sr (if s.Analysis.Interproc.s_pure then 'p' else '.'))
    ns.calls;
  (* disequality facts over the nest's names, in order *)
  List.iter
    (fun (a, b) ->
      if Hashtbl.mem slot a && Hashtbl.mem slot b then begin
        put_tag sr 'D';
        put_name sr a;
        put_name sr b
      end)
    facts;
  let spread, cluster = avail in
  put_tag sr (if spread then 'S' else '.');
  put_tag sr (if cluster then 'K' else '.');
  put_int sr depth;
  put_raw sr (opts_digest opts);
  if Buffer.length sr.buf > size_cap then begin
    Obs.Metrics.incr (Lazy.force bypass_counter);
    None
  end
  else
    let safe =
      Array.for_all (fun v -> not (SSet.mem v template_words)) names
      && SSet.is_empty (SSet.inter ns.data ns.calls)
    in
    Some
      {
        p_key = Digest.to_hex (Digest.string (Buffer.contents sr.buf));
        p_names = names;
        p_safe = safe;
      }

(* ------------------------------------------------------------------ *)
(* The table                                                           *)
(* ------------------------------------------------------------------ *)

type 'r entry = {
  e_names : string array;
  e_stmts : Ast.stmt list;
  e_reports : 'r list;  (** newest first, as the driver records them *)
  e_fresh : (string * string) list;  (** (prefix, name) stream, in order *)
  e_exact : bool;  (** serve only to identically-named nests *)
  e_sum : string Lazy.t;
      (** digest of the marshalled value, deferred to first verification
          (every forcing site holds the table mutex, so the lazy cell is
          never raced) *)
}

type 'r t = {
  capacity : int;
  mutex : Mutex.t;
  mutable table : ('r entry * int) SMap.t;  (* key -> entry, last tick *)
  recency : (string * int) Queue.t;  (* lazy-deletion LRU, as Cache *)
  mutable tick : int;
  corrupt : unit -> bool;  (* chaos hook: poison the entry being stored *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable corruptions : int;
}

let metric name help =
  Obs.Metrics.counter Obs.Metrics.global ~help name

let create ?(capacity = 512) ?(corrupt = fun () -> false) () =
  {
    capacity = max 1 capacity;
    mutex = Mutex.create ();
    table = SMap.empty;
    recency = Queue.create ();
    tick = 0;
    corrupt;
    hits = 0;
    misses = 0;
    evictions = 0;
    corruptions = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let size t = locked t (fun () -> SMap.cardinal t.table)

type stats = {
  st_hits : int;
  st_misses : int;
  st_evictions : int;
  st_corruptions : int;
  st_size : int;
}

let stats t =
  locked t (fun () ->
      {
        st_hits = t.hits;
        st_misses = t.misses;
        st_evictions = t.evictions;
        st_corruptions = t.corruptions;
        st_size = SMap.cardinal t.table;
      })

let checksum (stmts, reports, fresh) =
  Digest.to_hex
    (Digest.string (Marshal.to_string (stmts, reports, fresh) [ Marshal.No_sharing ]))

let touch t key =
  t.tick <- t.tick + 1;
  Queue.push (key, t.tick) t.recency;
  t.tick

(* pop queue pairs that no longer name the entry's latest tick *)
let rec evict_lru t =
  if SMap.cardinal t.table > t.capacity then
    match Queue.take_opt t.recency with
    | None -> ()
    | Some (key, tk) -> (
        match SMap.find_opt key t.table with
        | Some (_, latest) when latest = tk ->
            t.table <- SMap.remove key t.table;
            t.evictions <- t.evictions + 1;
            Obs.Metrics.incr (metric "memo_evictions_total" "memo LRU evictions");
            evict_lru t
        | _ -> evict_lru t)

(* Re-checksumming a resident entry on every hit costs a full marshal +
   digest of the stored result — on small nests that is the same order
   as the transformation the memo exists to skip.  Bit-rot is rare and
   persistent, so verification is amortized: every [verify_mask]+1-th
   hit re-digests (a rotted entry is still dropped within a bounded
   number of serves), and the hot hit path pays only the map lookup. *)
let verify_mask = 31

let find (t : 'r t) (prep : prep) : 'r entry option =
  locked t @@ fun () ->
  match SMap.find_opt prep.p_key t.table with
  | Some (e, _)
    when Array.length e.e_names = Array.length prep.p_names
         && (e.e_names = prep.p_names || not e.e_exact) ->
      if
        t.hits land verify_mask = 0
        && checksum (e.e_stmts, e.e_reports, e.e_fresh) <> Lazy.force e.e_sum
      then begin
        (* bit-rot defense, mirroring the result cache's checksum *)
        t.table <- SMap.remove prep.p_key t.table;
        t.corruptions <- t.corruptions + 1;
        Obs.Metrics.incr
          (metric "memo_corruptions_total" "memo entries dropped on checksum mismatch");
        t.misses <- t.misses + 1;
        Obs.Metrics.incr (metric "memo_misses_total" "memo lookups missed");
        None
      end
      else begin
        let tk = touch t prep.p_key in
        t.table <- SMap.add prep.p_key (e, tk) t.table;
        t.hits <- t.hits + 1;
        Obs.Metrics.incr (metric "memo_hits_total" "memo lookups served");
        Some e
      end
  | _ ->
      t.misses <- t.misses + 1;
      Obs.Metrics.incr (metric "memo_misses_total" "memo lookups missed");
      None

(* chaos poison: flip the first sequential DO of the stored statements to
   CDOALL — the unsafe direction, exactly what the validator gate exists
   to catch downstream *)
let rec poison_stmts stmts =
  let changed = ref false in
  let rec stmt s =
    if !changed then s
    else
      match s with
      | Ast.Do (h, blk) when h.Ast.cls = Ast.Seq ->
          changed := true;
          Ast.Do ({ h with Ast.cls = Ast.Cdoall }, blk)
      | Ast.Do (h, blk) ->
          Ast.Do (h, { blk with Ast.body = poison_stmts blk.Ast.body })
      | Ast.If (c, a, b) -> Ast.If (c, List.map stmt a, List.map stmt b)
      | Ast.Labeled (l, s) -> Ast.Labeled (l, stmt s)
      | s -> s
  in
  List.map stmt stmts

(* A fresh-name prefix in store-name space, mapped to replay-name space.
   Prefixes are either a literal (stripmine/recurrence temporaries) or
   [name ^ suffix] for a two-character suffix. *)
let rename_prefix rename prefix =
  if List.mem prefix literal_prefixes then Some prefix
  else
    let n = String.length prefix in
    if n > 2 then
      let stem = String.sub prefix 0 (n - 2)
      and suffix = String.sub prefix (n - 2) 2 in
      if suffix = "_p" || suffix = "_x" || suffix = "_r" then
        Some (rename stem ^ suffix)
      else None
    else None

let store (t : 'r t) (prep : prep) ~(stmts : Ast.stmt list)
    ~(reports : 'r list) ~(fresh : (string * string) list) : unit =
  (* a prefix we cannot map to another name space pins the entry to
     identically-named nests *)
  let id_ok p = rename_prefix (fun s -> s) p <> None in
  let exact = (not prep.p_safe) || not (List.for_all (fun (p, _) -> id_ok p) fresh) in
  let stmts = if t.corrupt () then poison_stmts stmts else stmts in
  let e =
    {
      e_names = prep.p_names;
      e_stmts = stmts;
      e_reports = reports;
      e_fresh = fresh;
      e_exact = exact;
      (* deferred: the common case is an entry that is stored once and
         replayed many times, and the rot window before the first
         verification is no wider than the verification stride *)
      e_sum = lazy (checksum (stmts, reports, fresh));
    }
  in
  locked t @@ fun () ->
  let tk = touch t prep.p_key in
  t.table <- SMap.add prep.p_key (e, tk) t.table;
  evict_lru t

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

(* rewrite the identifier tokens of a report string *)
let rename_text rename s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if is_ident_char s.[!i] then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      Buffer.add_string b (rename (String.sub s !i (!j - !i)));
      i := !j
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let rec rename_expr rn (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Int _ | Ast.Num _ | Ast.Str _ | Ast.Bool _ -> e
  | Ast.Var v -> Ast.Var (rn v)
  | Ast.Idx (a, es) -> Ast.Idx (rn a, List.map (rename_expr rn) es)
  | Ast.Section (a, dims) ->
      Ast.Section (rn a, List.map (rename_section rn) dims)
  | Ast.Call (f, es) -> Ast.Call (f, List.map (rename_expr rn) es)
  | Ast.Bin (op, a, b) -> Ast.Bin (op, rename_expr rn a, rename_expr rn b)
  | Ast.Un (op, a) -> Ast.Un (op, rename_expr rn a)

and rename_section rn = function
  | Ast.Range (a, b, c) ->
      Ast.Range
        ( Option.map (rename_expr rn) a,
          Option.map (rename_expr rn) b,
          Option.map (rename_expr rn) c )
  | Ast.Elem e -> Ast.Elem (rename_expr rn e)

let rename_lhs rn = function
  | Ast.LVar v -> Ast.LVar (rn v)
  | Ast.LIdx (a, es) -> Ast.LIdx (rn a, List.map (rename_expr rn) es)
  | Ast.LSection (a, dims) ->
      Ast.LSection (rn a, List.map (rename_section rn) dims)

let rename_decl rn (d : Ast.decl) =
  {
    d with
    Ast.d_name = rn d.Ast.d_name;
    Ast.d_dims =
      List.map (fun (lo, hi) -> (rename_expr rn lo, rename_expr rn hi)) d.Ast.d_dims;
  }

let rec rename_stmt rn (s : Ast.stmt) : Ast.stmt =
  match s with
  | Ast.Assign (l, e) -> Ast.Assign (rename_lhs rn l, rename_expr rn e)
  | Ast.If (c, t, e) ->
      Ast.If
        (rename_expr rn c, List.map (rename_stmt rn) t, List.map (rename_stmt rn) e)
  | Ast.Do (h, blk) -> Ast.Do (rename_header rn h, rename_block rn blk)
  | Ast.Where (c, body) ->
      Ast.Where (rename_expr rn c, List.map (rename_stmt rn) body)
  | Ast.CallSt (f, es) -> Ast.CallSt (f, List.map (rename_expr rn) es)
  | Ast.Return | Ast.Stop | Ast.Continue | Ast.Goto _ -> s
  | Ast.Labeled (l, s) -> Ast.Labeled (l, rename_stmt rn s)
  | Ast.Print es -> Ast.Print (List.map (rename_expr rn) es)
  | Ast.Read ls -> Ast.Read (List.map (rename_lhs rn) ls)

and rename_header rn (h : Ast.do_header) =
  {
    h with
    Ast.index = rn h.Ast.index;
    Ast.lo = rename_expr rn h.Ast.lo;
    Ast.hi = rename_expr rn h.Ast.hi;
    Ast.step = Option.map (rename_expr rn) h.Ast.step;
    Ast.locals = List.map (rename_decl rn) h.Ast.locals;
  }

and rename_block rn (blk : Ast.block) =
  {
    Ast.preamble = List.map (rename_stmt rn) blk.Ast.preamble;
    Ast.body = List.map (rename_stmt rn) blk.Ast.body;
    Ast.postamble = List.map (rename_stmt rn) blk.Ast.postamble;
  }

type replayed = {
  rp_stmts : Ast.stmt list;
  rp_rename : string -> string;  (** identifier map (stored → live) *)
  rp_text : string -> string;  (** report-string map (token-wise) *)
}

(** Materialize a stored entry at the current call site: map stored names
    to the caller's, and re-draw every fresh name from the live counter
    (through [fresh], normally [Ast_utils.fresh_name]) so the numbering
    matches what a direct run would have produced. *)
let replay (entry : 'r entry) (prep : prep) ~(fresh : string -> string) :
    replayed =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i stored ->
      let live = prep.p_names.(i) in
      if not (String.equal stored live) then Hashtbl.replace tbl stored live)
    entry.e_names;
  let base_rename v = Option.value (Hashtbl.find_opt tbl v) ~default:v in
  List.iter
    (fun (prefix, stored_name) ->
      let live_prefix =
        match rename_prefix base_rename prefix with
        | Some p -> p
        | None -> prefix (* exact-only entries never reach here renamed *)
      in
      let live_name = fresh live_prefix in
      if not (String.equal stored_name live_name) then
        Hashtbl.replace tbl stored_name live_name)
    entry.e_fresh;
  let rename v = Option.value (Hashtbl.find_opt tbl v) ~default:v in
  let stmts =
    if Hashtbl.length tbl = 0 then entry.e_stmts
    else List.map (rename_stmt rename) entry.e_stmts
  in
  {
    rp_stmts = stmts;
    rp_rename = rename;
    rp_text = (fun s -> if Hashtbl.length tbl = 0 then s else rename_text rename s);
  }
