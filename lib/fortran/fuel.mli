(** Fuel counter for long-running analyses: a cheap per-domain poll that
    hot loops call once per unit of work.

    The restructurer's deadline [interrupt] hook is otherwise polled only
    between loop nests, so a single pathological nest (a dependence test
    quadratic in the number of references, or one huge serial loop under
    the interpreter) could hold a worker domain far past its deadline.
    Hot loops call {!tick}; every [interval] ticks the installed hook
    runs and may raise (e.g. {!Restructurer.Driver.Interrupted}) to
    abandon the computation.

    State is Domain-local: concurrent worker domains poll their own
    deadlines without interference.  With no hook installed a tick is a
    decrement-and-test — cheap enough for per-iteration use. *)

val interval : int
(** Ticks between hook invocations (1024). *)

val set_hook : (unit -> unit) -> unit
(** Install the current domain's poll hook and reset the countdown. *)

val clear_hook : unit -> unit
(** Remove the current domain's poll hook. *)

val with_hook : (unit -> unit) -> (unit -> 'a) -> 'a
(** [with_hook f body]: run [body] with [f] installed, restoring the
    previously installed hook (if any) on exit — exception-safe. *)

val tick : unit -> unit
(** One unit of work; runs the hook every {!interval} calls. *)
