(** Line- and expression-level emission core shared by every codegen
    backend ({!Printer} for Cedar Fortran, the OpenMP backend in
    [lib/codegen]).  Precedence-aware expression printing lives only
    here, so backends cannot drift on expression syntax. *)

val prec_of : Ast.expr -> int
(** Precedence rank used for minimal parenthesization (9 = atom). *)

val binop_str : Ast.binop -> string

val float_lit : float -> string
(** A float literal that reparses to the same value. *)

val expr_str : Ast.expr -> string
val section_dim_str : Ast.expr Ast.section_dim -> string
val lhs_str : Ast.lhs -> string
val dtype_str : Ast.dtype -> string
val dims_str : (Ast.expr * Ast.expr) list -> string
val decl_line : Ast.decl -> string

val emit_line : Buffer.t -> ?label:int -> int -> string -> unit
(** [emit_line buf ~label indent text] appends one fixed-form-ish source
    line: a 4-digit label field (or six blanks), two spaces per indent
    level, the text, a newline. *)
