(** Cedar Fortran source printer.

    Emits the whole AST back as (Cedar) Fortran source.  The output is
    free-form-ish (leading six blanks, labels in the label field) and
    re-parses with {!Parser.parse_program}, which the round-trip property
    tests rely on.

    The expression/declaration/line layer lives in {!Emit} (shared with
    the OpenMP backend in [lib/codegen]); this module owns the Cedar
    statement and unit structure — CDOALL/CDOACROSS headers, loop-local
    declarations, preamble/loop/endloop/postamble blocks, GLOBAL/CLUSTER
    visibility and process-common lines. *)

open Ast

let buf_add = Buffer.add_string
let expr_str = Emit.expr_str
let lhs_str = Emit.lhs_str
let dtype_str = Emit.dtype_str
let decl_line = Emit.decl_line
let emit_line = Emit.emit_line

let rec emit_stmt buf indent = function
  | Assign (l, e) -> emit_line buf indent (lhs_str l ^ " = " ^ expr_str e)
  | If (c, [ s ], [])
    when match s with
         | Assign _ | CallSt _ | Goto _ | Return | Stop -> true
         | _ -> false ->
      let inner = Buffer.create 64 in
      emit_stmt inner 0 s;
      (* strip the 6-blank prefix and trailing newline of the inner emit *)
      let text = Buffer.contents inner in
      let text = String.trim text in
      emit_line buf indent (Printf.sprintf "if (%s) %s" (expr_str c) text)
  | If (c, t, e) ->
      emit_line buf indent (Printf.sprintf "if (%s) then" (expr_str c));
      List.iter (emit_stmt buf (indent + 1)) t;
      if e <> [] then begin
        emit_line buf indent "else";
        List.iter (emit_stmt buf (indent + 1)) e
      end;
      emit_line buf indent "endif"
  | Where (m, body) ->
      emit_line buf indent (Printf.sprintf "where (%s)" (expr_str m));
      List.iter (emit_stmt buf (indent + 1)) body;
      emit_line buf indent "endwhere"
  | Do (hdr, blk) ->
      let step_str =
        match hdr.step with None -> "" | Some s -> ", " ^ expr_str s
      in
      emit_line buf indent
        (Printf.sprintf "%s %s = %s, %s%s" (loop_keyword hdr.cls) hdr.index
           (expr_str hdr.lo) (expr_str hdr.hi) step_str);
      if hdr.cls = Seq then begin
        List.iter (emit_stmt buf (indent + 1)) blk.body;
        emit_line buf indent "enddo"
      end
      else begin
        List.iter (fun d -> emit_line buf (indent + 1) (decl_line d)) hdr.locals;
        if blk.preamble <> [] || blk.postamble <> [] then begin
          List.iter (emit_stmt buf (indent + 1)) blk.preamble;
          emit_line buf indent "loop";
          List.iter (emit_stmt buf (indent + 1)) blk.body;
          emit_line buf indent "endloop";
          List.iter (emit_stmt buf (indent + 1)) blk.postamble
        end
        else List.iter (emit_stmt buf (indent + 1)) blk.body;
        emit_line buf indent ("end " ^ String.lowercase_ascii (loop_keyword hdr.cls))
      end
  | CallSt (n, []) -> emit_line buf indent ("call " ^ n)
  | CallSt (n, args) ->
      emit_line buf indent
        (Printf.sprintf "call %s(%s)" n
           (String.concat ", " (List.map expr_str args)))
  | Return -> emit_line buf indent "return"
  | Stop -> emit_line buf indent "stop"
  | Continue -> emit_line buf indent "continue"
  | Goto n -> emit_line buf indent (Printf.sprintf "goto %d" n)
  | Labeled (l, s) ->
      (* print the inner statement carrying the label *)
      let inner = Buffer.create 64 in
      emit_stmt inner indent s;
      let text = Buffer.contents inner in
      (* replace the first 4 chars with the label *)
      let lbl = Printf.sprintf "%4d" l in
      if String.length text > 4 then
        buf_add buf (lbl ^ String.sub text 4 (String.length text - 4))
      else buf_add buf text
  | Print [] -> emit_line buf indent "print *"
  | Print args ->
      emit_line buf indent
        ("print *, " ^ String.concat ", " (List.map expr_str args))
  | Read ls ->
      emit_line buf indent
        ("read *, " ^ String.concat ", " (List.map lhs_str ls))

let emit_unit buf (u : punit) =
  (match u.u_kind with
  | Program -> emit_line buf 0 ("program " ^ u.u_name)
  | Subroutine ps ->
      emit_line buf 0
        (Printf.sprintf "subroutine %s(%s)" u.u_name (String.concat ", " ps))
  | Function (ty, ps) ->
      emit_line buf 0
        (Printf.sprintf "%s function %s(%s)" (dtype_str ty) u.u_name
           (String.concat ", " ps)));
  List.iter
    (fun (n, e) ->
      emit_line buf 1 (Printf.sprintf "parameter (%s = %s)" n (expr_str e)))
    u.u_params;
  (* visibility-only decls print as GLOBAL/CLUSTER statements *)
  let vis_decls, type_decls =
    List.partition (fun d -> d.d_dims = [] && d.d_vis <> Default
                             && d.d_type = Real) u.u_decls
  in
  List.iter (fun d -> emit_line buf 1 (decl_line d)) type_decls;
  List.iter
    (fun d ->
      match d.d_vis with
      | Global -> emit_line buf 1 ("global " ^ d.d_name)
      | Cluster -> emit_line buf 1 ("cluster " ^ d.d_name)
      | Default -> ())
    vis_decls;
  List.iter
    (fun d ->
      match d.d_vis with
      | Global when d.d_dims <> [] || d.d_type <> Real ->
          emit_line buf 1 ("global " ^ d.d_name)
      | Cluster when d.d_dims <> [] || d.d_type <> Real ->
          emit_line buf 1 ("cluster " ^ d.d_name)
      | _ -> ())
    type_decls;
  List.iter
    (fun cb ->
      let kw = if cb.c_process then "process common" else "common" in
      let blk = if cb.c_name = "" then "" else "/" ^ cb.c_name ^ "/ " in
      emit_line buf 1 (kw ^ " " ^ blk ^ String.concat ", " cb.c_vars))
    u.u_commons;
  List.iter
    (fun group ->
      List.iter
        (fun (a, b) ->
          emit_line buf 1 (Printf.sprintf "equivalence (%s, %s)" a b))
        group)
    u.u_equivs;
  List.iter (emit_stmt buf 1) u.u_body;
  emit_line buf 0 "end"

(** Print a whole program as Cedar Fortran source text. *)
let program_to_string (p : program) =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i u ->
      if i > 0 then Buffer.add_char buf '\n';
      emit_unit buf u)
    p;
  Buffer.contents buf

let stmt_to_string s =
  let buf = Buffer.create 128 in
  emit_stmt buf 0 s;
  Buffer.contents buf

let unit_to_string u =
  let buf = Buffer.create 1024 in
  emit_unit buf u;
  Buffer.contents buf
