(** Line- and expression-level emission core shared by every code
    generation backend.

    {!Printer} (Cedar Fortran) and the OpenMP backend both print
    expressions, declarations and fixed-form source lines identically;
    only statement- and unit-level structure differs between targets.
    That shared layer lives here so a backend cannot drift on expression
    syntax: the precedence/parenthesization logic has exactly one home. *)

open Ast

let buf_add = Buffer.add_string

let prec_of = function
  | Bin (Or, _, _) -> 1
  | Bin (And, _, _) -> 2
  | Un (Not, _) -> 3
  | Bin ((Eq | Ne | Lt | Le | Gt | Ge), _, _) -> 4
  | Bin ((Add | Sub), _, _) -> 5
  | Un (Neg, _) -> 5
  | Bin ((Mul | Div), _, _) -> 6
  | Bin (Pow, _, _) -> 7
  | Int _ | Num _ | Str _ | Bool _ | Var _ | Idx _ | Section _ | Call _ -> 9

and binop_str = function
  | Add -> " + "
  | Sub -> " - "
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "**"
  | Eq -> " .eq. "
  | Ne -> " .ne. "
  | Lt -> " .lt. "
  | Le -> " .le. "
  | Gt -> " .gt. "
  | Ge -> " .ge. "
  | And -> " .and. "
  | Or -> " .or. "

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.10g" f

let rec expr_str e =
  let paren child =
    let s = expr_str child in
    if prec_of child < prec_of e then "(" ^ s ^ ")" else s
  in
  match e with
  | Int n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Num f -> if f < 0.0 then "(" ^ float_lit f ^ ")" else float_lit f
  | Str s -> "'" ^ s ^ "'"
  | Bool true -> ".true."
  | Bool false -> ".false."
  | Var v -> v
  | Idx (a, args) ->
      Printf.sprintf "%s(%s)" a (String.concat ", " (List.map expr_str args))
  | Section (a, dims) ->
      Printf.sprintf "%s(%s)" a (String.concat ", " (List.map section_dim_str dims))
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_str args))
  | Bin (op, a, b) ->
      let sa = expr_str a and sb = expr_str b in
      (* ** is right-associative: a left operand of equal precedence needs
         parentheses ((x**y)**z prints as (x**y)**z, not x**y**z) *)
      let need_lparen =
        match op with
        | Pow -> prec_of a <= prec_of e && prec_of a < 9
        | _ -> prec_of a < prec_of e
      in
      let pa = if need_lparen then "(" ^ sa ^ ")" else sa in
      (* right operand of a left-assoc op at equal precedence needs parens
         for - and / ; Pow is right-assoc *)
      let need_rparen =
        match op with
        | Pow -> prec_of b < prec_of e
        | Sub | Div | Add | Mul -> prec_of b <= prec_of e && prec_of b < 9
        | _ -> prec_of b < prec_of e
      in
      let pb = if need_rparen then "(" ^ sb ^ ")" else sb in
      pa ^ binop_str op ^ pb
  | Un (Neg, a) ->
      (* a nested unary minus or additive child must be parenthesized:
         "--c*a" would reparse with the inner minus binding tighter *)
      let s = expr_str a in
      if prec_of a <= prec_of e then "-(" ^ s ^ ")" else "-" ^ s
  | Un (Not, a) -> ".not. " ^ paren a

and section_dim_str = function
  | Elem e -> expr_str e
  | Range (lo, hi, step) ->
      let s o = match o with None -> "" | Some e -> expr_str e in
      let base = s lo ^ ":" ^ s hi in
      (match step with None -> base | Some st -> base ^ ":" ^ expr_str st)

let lhs_str = function
  | LVar v -> v
  | LIdx (a, args) ->
      Printf.sprintf "%s(%s)" a (String.concat ", " (List.map expr_str args))
  | LSection (a, dims) ->
      Printf.sprintf "%s(%s)" a (String.concat ", " (List.map section_dim_str dims))

let dtype_str = function
  | Integer -> "integer"
  | Real -> "real"
  | Double -> "double precision"
  | Logical -> "logical"
  | Character -> "character"

let dims_str dims =
  if dims = [] then ""
  else
    "("
    ^ String.concat ", "
        (List.map
           (fun (lo, hi) ->
             match lo with
             | Int 1 -> (match hi with Int -1 -> "*" | _ -> expr_str hi)
             | _ -> expr_str lo ^ ":" ^ expr_str hi)
           dims)
    ^ ")"

let decl_line d = dtype_str d.d_type ^ " " ^ d.d_name ^ dims_str d.d_dims

let emit_line buf ?(label = 0) indent text =
  if label <> 0 then buf_add buf (Printf.sprintf "%4d  " label)
  else buf_add buf "      ";
  buf_add buf (String.make (2 * indent) ' ');
  buf_add buf text;
  Buffer.add_char buf '\n'
