(* See fuel.mli.  The counter and hook are Domain-local (same reasoning
   as Ast_utils.fresh_counter): each worker domain restructures its own
   job with its own deadline, so hooks must never leak across domains. *)

let interval = 1024

type state = { mutable countdown : int; mutable hook : (unit -> unit) option }

let key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { countdown = interval; hook = None })

let set_hook f =
  let s = Domain.DLS.get key in
  s.hook <- Some f;
  s.countdown <- interval

let clear_hook () =
  let s = Domain.DLS.get key in
  s.hook <- None

let with_hook f body =
  let s = Domain.DLS.get key in
  let saved = s.hook in
  s.hook <- Some f;
  s.countdown <- interval;
  Fun.protect ~finally:(fun () -> s.hook <- saved) body

let tick () =
  let s = Domain.DLS.get key in
  s.countdown <- s.countdown - 1;
  if s.countdown <= 0 then begin
    s.countdown <- interval;
    match s.hook with Some f -> f () | None -> ()
  end
