(** Cedar Fortran source printer.

    Output re-parses with {!Parser.parse_program}; the property tests
    rely on the round trip.  Expression/line primitives are re-exported
    from {!Emit}, the layer shared with non-Cedar codegen backends. *)

val expr_str : Ast.expr -> string
val lhs_str : Ast.lhs -> string
val decl_line : Ast.decl -> string

val emit_stmt : Buffer.t -> int -> Ast.stmt -> unit
(** Append one statement (recursively) at the given indent level. *)

val emit_unit : Buffer.t -> Ast.punit -> unit

val stmt_to_string : Ast.stmt -> string
val unit_to_string : Ast.punit -> string

val program_to_string : Ast.program -> string
(** Print a whole program as Cedar Fortran source text. *)
