(** Traversals, substitutions and structural helpers over the AST. *)

open Ast

module SSet = Set.Make (String)
module SMap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Expression traversal                                                *)
(* ------------------------------------------------------------------ *)

let rec map_expr f e =
  let e' =
    match e with
    | Int _ | Num _ | Str _ | Bool _ | Var _ -> e
    | Idx (a, args) -> Idx (a, List.map (map_expr f) args)
    | Section (a, dims) -> Section (a, List.map (map_section_dim f) dims)
    | Call (n, args) -> Call (n, List.map (map_expr f) args)
    | Bin (op, a, b) -> Bin (op, map_expr f a, map_expr f b)
    | Un (op, a) -> Un (op, map_expr f a)
  in
  f e'

and map_section_dim f = function
  | Elem e -> Elem (map_expr f e)
  | Range (lo, hi, step) ->
      Range
        ( Option.map (map_expr f) lo,
          Option.map (map_expr f) hi,
          Option.map (map_expr f) step )

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int _ | Num _ | Str _ | Bool _ | Var _ -> acc
  | Idx (_, args) | Call (_, args) -> List.fold_left (fold_expr f) acc args
  | Section (_, dims) ->
      List.fold_left
        (fun acc d ->
          match d with
          | Elem e -> fold_expr f acc e
          | Range (lo, hi, step) ->
              List.fold_left
                (fun acc o ->
                  match o with None -> acc | Some e -> fold_expr f acc e)
                acc [ lo; hi; step ])
        acc dims
  | Bin (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Un (_, a) -> fold_expr f acc a

(** All variable and array names read by an expression (array names include
    the base of element references and sections; function call names are not
    included, but their arguments are traversed). *)
let expr_vars e =
  fold_expr
    (fun acc e ->
      match e with
      | Var v -> SSet.add v acc
      | Idx (a, _) | Section (a, _) -> SSet.add a acc
      | _ -> acc)
    SSet.empty e

let lhs_name = function LVar v | LIdx (v, _) | LSection (v, _) -> v

(** Variables read on a left-hand side (the subscripts). *)
let lhs_read_vars = function
  | LVar _ -> SSet.empty
  | LIdx (_, args) ->
      List.fold_left (fun acc e -> SSet.union acc (expr_vars e)) SSet.empty args
  | LSection (_, dims) ->
      List.fold_left
        (fun acc d ->
          match d with
          | Elem e -> SSet.union acc (expr_vars e)
          | Range (lo, hi, step) ->
              List.fold_left
                (fun acc o ->
                  match o with
                  | None -> acc
                  | Some e -> SSet.union acc (expr_vars e))
                acc [ lo; hi; step ])
        SSet.empty dims

(** Substitute variable [v] by expression [r] everywhere in [e]. *)
let subst_var v r e =
  map_expr (function Var x when x = v -> r | x -> x) e

let subst_var_lhs v r = function
  | LVar x -> LVar x
  | LIdx (a, args) -> LIdx (a, List.map (subst_var v r) args)
  | LSection (a, dims) ->
      LSection (a, List.map (map_section_dim (function Var x when x = v -> r | x -> x)) dims)

(* ------------------------------------------------------------------ *)
(* Statement traversal                                                 *)
(* ------------------------------------------------------------------ *)

let rec map_stmt_exprs f s =
  let fe = map_expr f in
  let fl = function
    | LVar v -> LVar v
    | LIdx (a, args) -> LIdx (a, List.map fe args)
    | LSection (a, dims) -> LSection (a, List.map (map_section_dim f) dims)
  in
  match s with
  | Assign (l, e) -> Assign (fl l, fe e)
  | If (c, t, e) ->
      If (fe c, List.map (map_stmt_exprs f) t, List.map (map_stmt_exprs f) e)
  | Do (hdr, blk) ->
      Do
        ( {
            hdr with
            lo = fe hdr.lo;
            hi = fe hdr.hi;
            step = Option.map fe hdr.step;
          },
          {
            preamble = List.map (map_stmt_exprs f) blk.preamble;
            body = List.map (map_stmt_exprs f) blk.body;
            postamble = List.map (map_stmt_exprs f) blk.postamble;
          } )
  | Where (m, body) -> Where (fe m, List.map (map_stmt_exprs f) body)
  | CallSt (n, args) -> CallSt (n, List.map fe args)
  | Return | Stop | Continue | Goto _ -> s
  | Labeled (l, s) -> Labeled (l, map_stmt_exprs f s)
  | Print args -> Print (List.map fe args)
  | Read ls -> Read (List.map fl ls)

let rec fold_stmts f acc stmts = List.fold_left (fold_stmt f) acc stmts

and fold_stmt f acc s =
  let acc = f acc s in
  match s with
  | Assign _ | CallSt _ | Return | Stop | Continue | Goto _ | Print _ | Read _
    ->
      acc
  | If (_, t, e) -> fold_stmts f (fold_stmts f acc t) e
  | Do (_, blk) ->
      fold_stmts f (fold_stmts f (fold_stmts f acc blk.preamble) blk.body)
        blk.postamble
  | Where (_, body) -> fold_stmts f acc body
  | Labeled (_, s) -> fold_stmt f acc s

(** Rewrite statements bottom-up: [f] sees each statement after its children
    were rewritten and may return a replacement list. *)
let rec rewrite_stmts (f : stmt -> stmt list) stmts =
  List.concat_map (rewrite_stmt f) stmts

and rewrite_stmt f s =
  let s' =
    match s with
    | Assign _ | CallSt _ | Return | Stop | Continue | Goto _ | Print _
    | Read _ ->
        s
    | If (c, t, e) -> If (c, rewrite_stmts f t, rewrite_stmts f e)
    | Do (hdr, blk) ->
        Do
          ( hdr,
            {
              preamble = rewrite_stmts f blk.preamble;
              body = rewrite_stmts f blk.body;
              postamble = rewrite_stmts f blk.postamble;
            } )
    | Where (m, body) -> Where (m, rewrite_stmts f body)
    | Labeled (l, s) -> Labeled (l, s)
  in
  match s' with
  | Labeled (l, inner) -> (
      (* keep the label on the first replacement statement *)
      match rewrite_stmt f inner with
      | [] -> [ Labeled (l, Continue) ]
      | first :: rest -> Labeled (l, first) :: rest)
  | _ -> f s'

(** Strip Labeled wrappers (labels only matter for GOTO, which the
    restructurer treats as a parallelization blocker anyway). *)
let rec strip_labels_stmt s =
  match s with
  | Labeled (_, Continue) -> Continue
  | Labeled (l, s) -> Labeled (l, strip_labels_stmt s)
  | Assign _ | CallSt _ | Return | Stop | Continue | Goto _ | Print _ | Read _
    ->
      s
  | If (c, t, e) ->
      If (c, List.map strip_labels_stmt t, List.map strip_labels_stmt e)
  | Do (hdr, blk) ->
      Do
        ( hdr,
          {
            preamble = List.map strip_labels_stmt blk.preamble;
            body = List.map strip_labels_stmt blk.body;
            postamble = List.map strip_labels_stmt blk.postamble;
          } )
  | Where (m, body) -> Where (m, List.map strip_labels_stmt body)

(** Does any statement in the list satisfy [p]? *)
let exists_stmt p stmts = fold_stmts (fun acc s -> acc || p s) false stmts

let contains_goto stmts =
  exists_stmt (function Goto _ -> true | _ -> false) stmts

let contains_call stmts =
  exists_stmt
    (function
      | CallSt _ -> true
      | Assign (_, e) ->
          fold_expr
            (fun acc e ->
              acc
              || match e with Call (n, _) -> not (is_intrinsic n) | _ -> false)
            false e
      | _ -> false)
    stmts

let contains_io stmts =
  exists_stmt (function Print _ | Read _ -> true | _ -> false) stmts

(* ------------------------------------------------------------------ *)
(* Reads / writes of statements                                        *)
(* ------------------------------------------------------------------ *)

(** Scalar and array names written by one statement (not recursing into
    nested loop bodies' headers' index variables — those are included too,
    since a DO writes its index). *)
let rec stmt_writes acc s =
  match s with
  | Assign (l, _) -> SSet.add (lhs_name l) acc
  | If (_, t, e) -> List.fold_left stmt_writes (List.fold_left stmt_writes acc t) e
  | Do (hdr, blk) ->
      let acc = SSet.add hdr.index acc in
      List.fold_left stmt_writes
        (List.fold_left stmt_writes
           (List.fold_left stmt_writes acc blk.preamble)
           blk.body)
        blk.postamble
  | Where (_, body) -> List.fold_left stmt_writes acc body
  | CallSt (_, args) ->
      (* conservatively: every variable or array argument may be written *)
      List.fold_left
        (fun acc e ->
          match e with
          | Var v -> SSet.add v acc
          | Idx (a, _) | Section (a, _) -> SSet.add a acc
          | _ -> acc)
        acc args
  | Read ls -> List.fold_left (fun acc l -> SSet.add (lhs_name l) acc) acc ls
  | Labeled (_, s) -> stmt_writes acc s
  | Return | Stop | Continue | Goto _ | Print _ -> acc

let rec stmt_reads acc s =
  match s with
  | Assign (l, e) -> SSet.union acc (SSet.union (lhs_read_vars l) (expr_vars e))
  | If (c, t, e) ->
      let acc = SSet.union acc (expr_vars c) in
      List.fold_left stmt_reads (List.fold_left stmt_reads acc t) e
  | Do (hdr, blk) ->
      let acc = SSet.union acc (expr_vars hdr.lo) in
      let acc = SSet.union acc (expr_vars hdr.hi) in
      let acc =
        match hdr.step with None -> acc | Some s -> SSet.union acc (expr_vars s)
      in
      List.fold_left stmt_reads
        (List.fold_left stmt_reads
           (List.fold_left stmt_reads acc blk.preamble)
           blk.body)
        blk.postamble
  | Where (m, body) ->
      List.fold_left stmt_reads (SSet.union acc (expr_vars m)) body
  | CallSt (_, args) ->
      List.fold_left (fun acc e -> SSet.union acc (expr_vars e)) acc args
  | Print args ->
      List.fold_left (fun acc e -> SSet.union acc (expr_vars e)) acc args
  | Read ls -> List.fold_left (fun acc l -> SSet.union acc (lhs_read_vars l)) acc ls
  | Labeled (_, s) -> stmt_reads acc s
  | Return | Stop | Continue | Goto _ -> acc

let writes_of stmts = List.fold_left stmt_writes SSet.empty stmts
let reads_of stmts = List.fold_left stmt_reads SSet.empty stmts

(** The coefficient of [index] in an expression viewed structurally as a
    sum of terms: terms free of the index may be arbitrarily nonlinear in
    other variables; terms in the index must be [index] or [c*index].
    [None] = not linear in the index. *)
let rec index_coeff index (e : Ast.expr) : int option =
  let free e = not (SSet.mem index (expr_vars e)) in
  match e with
  | _ when free e -> Some 0
  | Ast.Var v when v = index -> Some 1
  | Ast.Bin (Ast.Add, a, b) -> (
      match (index_coeff index a, index_coeff index b) with
      | Some x, Some y -> Some (x + y)
      | _ -> None)
  | Ast.Bin (Ast.Sub, a, b) -> (
      match (index_coeff index a, index_coeff index b) with
      | Some x, Some y -> Some (x - y)
      | _ -> None)
  | Ast.Bin (Ast.Mul, Ast.Int c, b) -> (
      match index_coeff index b with Some y -> Some (c * y) | None -> None)
  | Ast.Bin (Ast.Mul, a, Ast.Int c) -> (
      match index_coeff index a with Some x -> Some (c * x) | None -> None)
  | Ast.Un (Ast.Neg, a) -> (
      match index_coeff index a with Some x -> Some (-x) | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Fresh names                                                         *)
(* ------------------------------------------------------------------ *)

(* Domain-local so concurrent restructuring jobs (one per worker domain)
   never race on the counter: each domain numbers its own temporaries, and
   [reset_fresh] at every program-unit boundary keeps the generated names
   a function of the unit alone — identical whichever domain runs it. *)
let fresh_counter : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

(* Observers of fresh-name generation, innermost first.  The nest
   memoizer records the (prefix, name) stream of a transformation so a
   replayed hit can re-draw the same names from the live counter and stay
   byte-identical with a direct run. *)
let fresh_hooks : (string -> string -> unit) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let fresh_name prefix =
  let c = Domain.DLS.get fresh_counter in
  incr c;
  let n = Printf.sprintf "%s%d" prefix !c in
  List.iter (fun f -> f prefix n) !(Domain.DLS.get fresh_hooks);
  n

let reset_fresh () = Domain.DLS.get fresh_counter := 0

let with_fresh_hook (f : string -> string -> unit) (body : unit -> 'a) : 'a =
  let hooks = Domain.DLS.get fresh_hooks in
  hooks := f :: !hooks;
  Fun.protect ~finally:(fun () -> hooks := List.tl !hooks) body

(* ------------------------------------------------------------------ *)
(* Simple constant folding / simplification                            *)
(* ------------------------------------------------------------------ *)

let rec simplify e =
  match e with
  | Bin (op, a, b) -> (
      let a = simplify a and b = simplify b in
      match (op, a, b) with
      | Add, Int x, Int y -> Int (x + y)
      | Sub, Int x, Int y -> Int (x - y)
      | Mul, Int x, Int y -> Int (x * y)
      | Div, Int x, Int y when y <> 0 && x mod y = 0 -> Int (x / y)
      | Add, e, Int 0 | Add, Int 0, e -> e
      | Sub, e, Int 0 -> e
      | Mul, e, Int 1 | Mul, Int 1, e -> e
      | Mul, _, Int 0 | Mul, Int 0, _ -> Int 0
      | Div, e, Int 1 -> e
      | Pow, e, Int 1 -> e
      | _ -> Bin (op, a, b))
  | Un (Neg, Int x) -> Int (-x)
  | Un (op, a) -> Un (op, simplify a)
  | Idx (n, args) -> Idx (n, List.map simplify args)
  | Call (n, args) -> Call (n, List.map simplify args)
  | Section (n, dims) ->
      Section
        ( n,
          List.map
            (function
              | Elem e -> Elem (simplify e)
              | Range (lo, hi, st) ->
                  Range
                    ( Option.map simplify lo,
                      Option.map simplify hi,
                      Option.map simplify st ))
            dims )
  | Int _ | Num _ | Str _ | Bool _ | Var _ -> e

(** Try to evaluate an expression to an integer constant given PARAMETER
    bindings. *)
let rec const_eval params e =
  match e with
  | Int n -> Some n
  | Var v -> (
      match List.assoc_opt v params with
      | Some e -> const_eval params e
      | None -> None)
  | Bin (op, a, b) -> (
      match (const_eval params a, const_eval params b) with
      | Some x, Some y -> (
          match op with
          | Add -> Some (x + y)
          | Sub -> Some (x - y)
          | Mul -> Some (x * y)
          | Div -> if y = 0 then None else Some (x / y)
          | Pow ->
              if y < 0 then None
              else
                let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
                Some (pow x y)
          | _ -> None)
      | _ -> None)
  | Un (Neg, a) -> Option.map (fun x -> -x) (const_eval params a)
  | _ -> None
