(** OpenMP backend: lowers the restructurer's Cedar loop annotations to
    standard Fortran with OpenMP directives.  See the implementation
    header for the full directive mapping; the README "Targets" section
    has the user-facing table. *)

val program_to_string : Fortran.Ast.program -> string
(** Print a whole program as Fortran + OpenMP directives. *)

val unit_to_string : Fortran.Ast.punit -> string

val lift_source : string -> (string, string) result
(** Re-read this module's own output back into Cedar dialect source so
    the Cedar parser and static race checks run unchanged on OpenMP
    output.  [Error msg] on a directive the lift does not understand. *)
