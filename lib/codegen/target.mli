(** Codegen targets: which surface syntax the service emits. *)

type t = Cedar | Openmp [@@deriving show, eq]

val to_string : t -> string

val of_string : string -> t option
(** Case-insensitive; accepts ["cedar"], ["openmp"] (and ["omp"]). *)

val code : t -> int
(** Wire encoding of a target (protocol v4 Submit frames): 0 = Cedar,
    1 = OpenMP. *)

val of_code : int -> t option

val all : t list
