(** Codegen targets.

    The restructurer's output AST is target-neutral; a target picks the
    concrete surface syntax the service emits.  [Cedar] is the classic
    Cedar Fortran dialect (CDOALL/CDOACROSS, loop-local declarations,
    preamble/postamble blocks); [Openmp] lowers the same annotations to
    standard Fortran with OpenMP directives. *)

type t = Cedar | Openmp [@@deriving show { with_path = false }, eq]

let to_string = function Cedar -> "cedar" | Openmp -> "openmp"

let of_string s =
  match String.lowercase_ascii s with
  | "cedar" -> Some Cedar
  | "openmp" | "omp" -> Some Openmp
  | _ -> None

(** Wire encoding of a target (protocol v4 Submit frames). *)
let code = function Cedar -> 0 | Openmp -> 1

let of_code = function 0 -> Some Cedar | 1 -> Some Openmp | _ -> None

let all = [ Cedar; Openmp ]
