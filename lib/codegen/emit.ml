(** Target dispatch for code emission.

    The Cedar target delegates to {!Fortran.Printer} unchanged, so the
    default target's output is byte-identical to the historical printer
    (the golden snapshots pin this down). *)

let program_to_string ~(target : Target.t) (p : Fortran.Ast.program) : string =
  match target with
  | Target.Cedar -> Fortran.Printer.program_to_string p
  | Target.Openmp -> Openmp.program_to_string p

let unit_to_string ~(target : Target.t) (u : Fortran.Ast.punit) : string =
  match target with
  | Target.Cedar -> Fortran.Printer.unit_to_string u
  | Target.Openmp -> Openmp.unit_to_string u
