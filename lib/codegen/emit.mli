(** Target dispatch for code emission.  [~target:Cedar] delegates to
    {!Fortran.Printer} unchanged (byte-identical output). *)

val program_to_string : target:Target.t -> Fortran.Ast.program -> string
val unit_to_string : target:Target.t -> Fortran.Ast.punit -> string
