(** OpenMP backend: lowers the restructurer's Cedar loop annotations to
    standard Fortran with OpenMP directives.

    Mapping (see README "Targets"):
    - CDOALL/SDOALL/XDOALL with no residual preamble/postamble lower to
      [!$omp parallel do] with [private(...)] for loop-locals and
      [firstprivate(...)] for locals initialized to loop-invariant values
      in the preamble (the init hoists in front of the directive).
    - Scalar reductions recognized by {!Transform.Reduction_par.recognize}
      lower to [reduction(op:var)] clauses; the partial-accumulator
      machinery is stripped and the body accumulates into the shared name.
    - CDOACROSS lowers to [!$omp parallel do ordered(1)]; [call await(c,d)]
      becomes [!$omp ordered depend(sink: i - d)] and [call advance(c)]
      becomes [!$omp ordered depend(source)].
    - [call lock(k)] / [call unlock(k)] inside a parallel region become
      [!$omp critical (lkk)] / [!$omp end critical (lkk)]; in serial
      context they are dropped (nothing to protect).
    - Loops whose preamble/postamble cannot be expressed as clauses
      (array reductions, residual block structure) demote to serial DO
      loops: preamble, loop, postamble emitted in sequence, with the
      synchronization calls stripped.
    - Loop-local declarations hoist to unit level (names are fresh per
      restructuring run, so hoisting cannot collide).
    - Cedar [process common] (one copy in global memory) is exactly an
      OpenMP common block, so it prints as plain [common]; a task-local
      plain Cedar [common] gets [!$omp threadprivate(/blk/)] when named.
      GLOBAL/CLUSTER visibility lines are dropped (shared memory).

    [lift_source] is the inverse front end used by the validator: it
    re-reads this module's own output back into the Cedar dialect so the
    existing parser and static checks run unchanged on OpenMP output. *)

open Fortran
open Ast
module R = Transform.Reduction_par
module U = Ast_utils
module E = Fortran.Emit

let expr_str = E.expr_str
let lhs_str = E.lhs_str
let decl_line = E.decl_line
let emit_line = E.emit_line
let dir buf indent text = emit_line buf indent ("!$omp " ^ text)

type ctx = {
  in_par : bool;  (** inside some enclosing parallel region *)
  ordered : string option;  (** innermost ordered doacross index *)
  hoist : decl list ref;  (** loop-locals hoisted to unit level *)
}

(* indices of sequential DO loops nested in [stmts]; each thread of an
   enclosing parallel loop needs its own copy *)
let rec seq_indices acc stmts =
  List.fold_left
    (fun acc st ->
      match st with
      | Do (h, b) when h.cls = Seq ->
          let acc = h.index :: acc in
          seq_indices (seq_indices (seq_indices acc b.preamble) b.body) b.postamble
      | Do (_, _) -> acc (* nested parallel loops carry their own directive *)
      | If (_, t, e) -> seq_indices (seq_indices acc t) e
      | Where (_, b) -> seq_indices acc b
      | Labeled (_, s) -> seq_indices acc [ s ]
      | _ -> acc)
    acc stmts

let rec dedup = function
  | [] -> []
  | x :: rest -> if List.mem x rest then dedup rest else x :: dedup rest

(* When the whole preamble is [local = loop-invariant-expr] inits, each
   becomes a hoisted assignment plus a firstprivate clause. *)
let fp_split index (locals : decl list) preamble =
  let lnames = List.map (fun d -> d.d_name) locals in
  let rec go fps = function
    | [] -> Some (List.rev fps)
    | Assign (LVar p, e) :: rest
      when List.mem p lnames
           && (not (List.mem_assoc p fps))
           &&
           let vs = U.expr_vars e in
           (not (U.SSet.mem index vs))
           && not (List.exists (fun l -> U.SSet.mem l vs) lnames) ->
        go ((p, e) :: fps) rest
    | _ -> None
  in
  go [] preamble

let critical_name args =
  match args with [ Int k ] -> Printf.sprintf " (lk%d)" k | _ -> ""

let do_line h =
  let step = match h.step with None -> "" | Some s -> ", " ^ expr_str s in
  Printf.sprintf "DO %s = %s, %s%s" h.index (expr_str h.lo) (expr_str h.hi) step

let mapped_call = [ "lock"; "unlock"; "await"; "advance" ]

let rec emit_stmt ctx buf indent = function
  | Assign (l, e) -> emit_line buf indent (lhs_str l ^ " = " ^ expr_str e)
  | If (c, [ s ], [])
    when match s with
         | Assign _ | Goto _ | Return | Stop -> true
         | CallSt (n, _) -> not (List.mem n mapped_call)
         | _ -> false ->
      let inner = Buffer.create 64 in
      emit_stmt ctx inner 0 s;
      let text = String.trim (Buffer.contents inner) in
      emit_line buf indent (Printf.sprintf "if (%s) %s" (expr_str c) text)
  | If (c, t, e) ->
      emit_line buf indent (Printf.sprintf "if (%s) then" (expr_str c));
      List.iter (emit_stmt ctx buf (indent + 1)) t;
      if e <> [] then begin
        emit_line buf indent "else";
        List.iter (emit_stmt ctx buf (indent + 1)) e
      end;
      emit_line buf indent "endif"
  | Where (m, body) ->
      emit_line buf indent (Printf.sprintf "where (%s)" (expr_str m));
      List.iter (emit_stmt ctx buf (indent + 1)) body;
      emit_line buf indent "endwhere"
  | Do (hdr, blk) when hdr.cls = Seq ->
      emit_line buf indent (do_line hdr);
      List.iter (emit_stmt ctx buf (indent + 1)) blk.body;
      emit_line buf indent "enddo"
  | Do (hdr, blk) -> emit_parallel ctx buf indent hdr blk
  | CallSt ("lock", args) ->
      if ctx.in_par then dir buf indent ("critical" ^ critical_name args)
  | CallSt ("unlock", args) ->
      if ctx.in_par then dir buf indent ("end critical" ^ critical_name args)
  | CallSt ("await", [ _; d ]) -> (
      match ctx.ordered with
      | Some i ->
          dir buf indent
            (Printf.sprintf "ordered depend(sink: %s - %s)" i (expr_str d))
      | None -> ())
  | CallSt ("advance", _) -> (
      match ctx.ordered with
      | Some _ -> dir buf indent "ordered depend(source)"
      | None -> ())
  | CallSt (n, []) -> emit_line buf indent ("call " ^ n)
  | CallSt (n, args) ->
      emit_line buf indent
        (Printf.sprintf "call %s(%s)" n
           (String.concat ", " (List.map expr_str args)))
  | Return -> emit_line buf indent "return"
  | Stop -> emit_line buf indent "stop"
  | Continue -> emit_line buf indent "continue"
  | Goto n -> emit_line buf indent (Printf.sprintf "goto %d" n)
  | Labeled (l, s) ->
      let inner = Buffer.create 64 in
      emit_stmt ctx inner indent s;
      let text = Buffer.contents inner in
      let lbl = Printf.sprintf "%4d" l in
      if String.length text > 4 then
        Buffer.add_string buf (lbl ^ String.sub text 4 (String.length text - 4))
      else Buffer.add_string buf text
  | Print [] -> emit_line buf indent "print *"
  | Print args ->
      emit_line buf indent
        ("print *, " ^ String.concat ", " (List.map expr_str args))
  | Read ls ->
      emit_line buf indent
        ("read *, " ^ String.concat ", " (List.map lhs_str ls))

and emit_parallel ctx buf indent h blk =
  let reds, h', blk' =
    match R.recognize h blk with
    | Some (r, h2, b2) -> (r, h2, b2)
    | None -> ([], h, blk)
  in
  let fp =
    if blk'.postamble = [] then fp_split h'.index h'.locals blk'.preamble
    else None
  in
  match fp with
  | Some fps ->
      (* clean clause lowering *)
      ctx.hoist := !(ctx.hoist) @ h'.locals;
      let fp_names = List.map fst fps in
      let privates =
        List.filter_map
          (fun d ->
            if List.mem d.d_name fp_names then None else Some d.d_name)
          h'.locals
        @ seq_indices [] blk'.body
        |> dedup
        |> List.filter (fun v -> v <> h'.index)
      in
      List.iter
        (fun (p, e) -> emit_line buf indent (p ^ " = " ^ expr_str e))
        fps;
      let is_dax = is_doacross h.cls in
      let clauses =
        (if is_dax then [ "ordered(1)" ] else [])
        @ List.map
            (fun r ->
              Printf.sprintf "reduction(%s:%s)" (R.op_clause r.R.rr_op)
                r.R.rr_shared)
            reds
        @ (if privates = [] then []
           else [ "private(" ^ String.concat ", " privates ^ ")" ])
        @
        if fp_names = [] then []
        else [ "firstprivate(" ^ String.concat ", " fp_names ^ ")" ]
      in
      dir buf indent (String.concat " " ("parallel do" :: clauses));
      emit_line buf indent (do_line h');
      let bctx =
        {
          ctx with
          in_par = true;
          ordered = (if is_dax then Some h'.index else None);
        }
      in
      List.iter (emit_stmt bctx buf (indent + 1)) blk'.body;
      emit_line buf indent "enddo";
      dir buf indent "end parallel do"
  | None ->
      (* serial demotion of the original loop: preamble, plain DO,
         postamble; synchronization calls drop with the parallelism *)
      ctx.hoist := !(ctx.hoist) @ h.locals;
      List.iter (emit_stmt ctx buf indent) blk.preamble;
      emit_line buf indent (do_line h);
      List.iter (emit_stmt ctx buf (indent + 1)) blk.body;
      emit_line buf indent "enddo";
      List.iter (emit_stmt ctx buf indent) blk.postamble

let emit_unit buf (u : punit) =
  (match u.u_kind with
  | Program -> emit_line buf 0 ("program " ^ u.u_name)
  | Subroutine ps ->
      emit_line buf 0
        (Printf.sprintf "subroutine %s(%s)" u.u_name (String.concat ", " ps))
  | Function (ty, ps) ->
      emit_line buf 0
        (Printf.sprintf "%s function %s(%s)" (E.dtype_str ty) u.u_name
           (String.concat ", " ps)));
  List.iter
    (fun (n, e) ->
      emit_line buf 1 (Printf.sprintf "parameter (%s = %s)" n (expr_str e)))
    u.u_params;
  (* body first: lowering decides which loop-locals hoist to unit level *)
  let bodybuf = Buffer.create 1024 in
  let ctx = { in_par = false; ordered = None; hoist = ref [] } in
  List.iter (emit_stmt ctx bodybuf 1) u.u_body;
  let declared = List.map (fun d -> d.d_name) u.u_decls in
  let hoisted =
    List.filter (fun d -> not (List.mem d.d_name declared)) !(ctx.hoist)
    |> dedup
  in
  (* every declaration prints with its type; visibility lines drop *)
  List.iter (fun d -> emit_line buf 1 (decl_line d)) u.u_decls;
  List.iter (fun d -> emit_line buf 1 (decl_line d)) hoisted;
  List.iter
    (fun cb ->
      let blk = if cb.c_name = "" then "" else "/" ^ cb.c_name ^ "/ " in
      emit_line buf 1 ("common " ^ blk ^ String.concat ", " cb.c_vars);
      if (not cb.c_process) && cb.c_name <> "" then
        dir buf 1 (Printf.sprintf "threadprivate(/%s/)" cb.c_name))
    u.u_commons;
  List.iter
    (fun group ->
      List.iter
        (fun (a, b) ->
          emit_line buf 1 (Printf.sprintf "equivalence (%s, %s)" a b))
        group)
    u.u_equivs;
  Buffer.add_buffer buf bodybuf;
  emit_line buf 0 "end"

let program_to_string (p : program) =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i u ->
      if i > 0 then Buffer.add_char buf '\n';
      emit_unit buf u)
    p;
  Buffer.contents buf

let unit_to_string u =
  let buf = Buffer.create 1024 in
  emit_unit buf u;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Lift front end: OpenMP output -> Cedar dialect text                 *)
(* ------------------------------------------------------------------ *)

exception Lift_error of string

let trim = String.trim

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let leading_ws s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do incr i done;
  String.sub s 0 !i

let is_directive s = starts_with ~prefix:"!$omp" (trim s)

let directive_text s =
  let t = trim s in
  trim (String.sub t 5 (String.length t - 5))

(* split "private(a, b) reduction(+:s)" into [(name, payload); ...] *)
let parse_clauses text =
  let n = String.length text in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && (text.[!i] = ' ' || text.[!i] = ',') do incr i done;
    if !i < n then begin
      let start = !i in
      while !i < n && text.[!i] <> '(' && text.[!i] <> ' ' do incr i done;
      let name = String.sub text start (!i - start) in
      let payload =
        if !i < n && text.[!i] = '(' then begin
          let depth = ref 0 and pstart = !i + 1 in
          let stop = ref (-1) in
          while !i < n && !stop < 0 do
            (if text.[!i] = '(' then incr depth
             else if text.[!i] = ')' then begin
               decr depth;
               if !depth = 0 then stop := !i
             end);
            incr i
          done;
          if !stop < 0 then raise (Lift_error ("unbalanced clause: " ^ text));
          String.sub text pstart (!stop - pstart)
        end
        else ""
      in
      if name <> "" then out := (String.lowercase_ascii name, payload) :: !out
    end
  done;
  List.rev !out

let split_commas s =
  String.split_on_char ',' s |> List.map trim |> List.filter (fun x -> x <> "")

(* word-boundary rename outside quoted strings *)
let rename_word ~from ~into line =
  let is_word c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  let n = String.length line and fl = String.length from in
  let buf = Buffer.create (n + 8) in
  let i = ref 0 and in_str = ref false in
  while !i < n do
    let c = line.[!i] in
    if c = '\'' then begin
      in_str := not !in_str;
      Buffer.add_char buf c;
      incr i
    end
    else if
      (not !in_str)
      && !i + fl <= n
      && String.sub line !i fl = from
      && ((!i = 0) || not (is_word line.[!i - 1]))
      && (!i + fl = n || not (is_word line.[!i + fl]))
    then begin
      Buffer.add_string buf into;
      i := !i + fl
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let decl_keywords =
  [ "double precision "; "integer "; "real "; "logical "; "character " ]

(* "real x(10)" -> Some ("x", "real x(10)") *)
let parse_decl_line t =
  let rec find = function
    | [] -> None
    | kw :: rest ->
        if starts_with ~prefix:kw t then
          let body = trim (String.sub t (String.length kw) (String.length t - String.length kw)) in
          let stop = ref (String.length body) in
          String.iteri (fun i c -> if c = '(' && !stop = String.length body then stop := i) body;
          let name = trim (String.sub body 0 !stop) in
          (* a single declared name only; multi-name decls are not in our
             emission format *)
          if name <> "" && not (String.contains name ',') then Some (name, t)
          else None
        else find rest
  in
  find decl_keywords

let implicit_decl name =
  let c = Char.lowercase_ascii name.[0] in
  if c >= 'i' && c <= 'n' then "integer " ^ name else "real " ^ name

let decl_type t =
  if starts_with ~prefix:"integer" t then Integer
  else if starts_with ~prefix:"double precision" t then Double
  else if starts_with ~prefix:"logical" t then Logical
  else if starts_with ~prefix:"character" t then Character
  else Real

let identity_text op ty =
  match (op, ty) with
  | Analysis.Scalars.Rsum, Integer -> "0"
  | Analysis.Scalars.Rsum, _ -> "0.0"
  | Analysis.Scalars.Rprod, Integer -> "1"
  | Analysis.Scalars.Rprod, _ -> "1.0"
  | Analysis.Scalars.Rmin, Integer -> "1073741823"
  | Analysis.Scalars.Rmin, _ -> "1e30"
  | Analysis.Scalars.Rmax, Integer -> "(-1073741823)"
  | Analysis.Scalars.Rmax, _ -> "(-1e30)"

let merge_text op s p =
  match op with
  | Analysis.Scalars.Rsum -> Printf.sprintf "%s = %s + %s" s s p
  | Analysis.Scalars.Rprod -> Printf.sprintf "%s = %s * %s" s s p
  | Analysis.Scalars.Rmin -> Printf.sprintf "%s = min(%s, %s)" s s p
  | Analysis.Scalars.Rmax -> Printf.sprintf "%s = max(%s, %s)" s s p


(* "critical (lk2)" / "end critical (lk2)" -> "2" *)
let critical_id dt =
  match String.index_opt dt '(' with
  | None -> "1"
  | Some i -> (
      let rest = trim (String.sub dt (i + 1) (String.length dt - i - 1)) in
      if starts_with ~prefix:"lk" rest then
        match String.index_opt rest ')' with
        | Some j -> String.sub rest 2 (j - 2)
        | None -> "1"
      else "1")

(* trimmed line with any leading statement label stripped *)
let code_text t =
  let n = String.length t in
  let i = ref 0 in
  while !i < n && t.[!i] >= '0' && t.[!i] <= '9' do incr i done;
  if !i > 0 && !i < n && t.[!i] = ' ' then trim (String.sub t !i (n - !i))
  else if !i = 0 then t
  else t

type frame = {
  f_ws : string;  (** leading whitespace of the loop header line *)
  f_kind : string;  (** ["cdoall"] or ["cdoacross"] *)
  f_locals : string list;  (** loop-local decl line texts (no ws) *)
  f_pre : string list;  (** preamble statement texts (no ws) *)
  f_post : string list;  (** postamble statement texts (no ws) *)
  f_renames : (string * string) list;  (** shared -> partial, body only *)
  mutable f_depth : int;  (** open DO nesting inside this loop *)
  f_lines : Buffer.t;  (** accumulated body lines *)
}

(** Re-read this module's own OpenMP output back into Cedar dialect
    source, so the Cedar parser and the static race checks run unchanged
    on OpenMP output.  Directive-lowered loops come back as
    [cdoall]/[cdoacross] (the placement flavor collapses); clause-lowered
    privatization and reductions come back as loop-local declarations and
    partial-accumulator machinery in the accepted shapes.  Returns
    [Error _] on a directive the lift does not understand. *)
let lift_source (src : string) : (string, string) result =
  try
    let raw = String.split_on_char '\n' src in
    let raw = match List.rev raw with "" :: r -> List.rev r | _ -> raw in
    let out = Buffer.create (String.length src) in
    let stack : frame list ref = ref [] in
    let pending : (string * string) list option ref = ref None in
    let decls : (string, string) Hashtbl.t = Hashtbl.create 16 in
    let threadpriv : (string, unit) Hashtbl.t = Hashtbl.create 4 in
    let fresh = ref 0 in
    (* prescan: which named commons stay task-local *)
    List.iter
      (fun l ->
        if is_directive l then
          let dt = directive_text l in
          if starts_with ~prefix:"threadprivate" dt then
            match String.index_opt dt '/' with
            | Some i -> (
                match String.index_from_opt dt (i + 1) '/' with
                | Some j ->
                    Hashtbl.replace threadpriv (String.sub dt (i + 1) (j - i - 1)) ()
                | None -> ())
            | None -> ())
      raw;
    let cur_buf () = match !stack with [] -> out | f :: _ -> f.f_lines in
    let emit line = Buffer.add_string (cur_buf ()) (line ^ "\n") in
    (* pop the newest emitted line at the current level if [p] holds *)
    let pop_last p =
      let buf = cur_buf () in
      let s = Buffer.contents buf in
      let n = String.length s in
      if n = 0 then None
      else
        let start =
          match String.rindex_opt (String.sub s 0 (n - 1)) '\n' with
          | Some i -> i + 1
          | None -> 0
        in
        let last = String.sub s start (n - start - 1) in
        if p last then begin
          Buffer.clear buf;
          Buffer.add_string buf (String.sub s 0 start);
          Some last
        end
        else None
    in
    let close_frame f =
      let b = Buffer.create 256 in
      let add ws t = Buffer.add_string b (ws ^ t ^ "\n") in
      let inner = f.f_ws ^ "  " in
      List.iter (add inner) f.f_locals;
      let has_blocks = f.f_pre <> [] || f.f_post <> [] in
      if has_blocks then begin
        List.iter (add inner) f.f_pre;
        add f.f_ws "loop"
      end;
      Buffer.add_buffer b f.f_lines;
      if has_blocks then begin
        add f.f_ws "endloop";
        List.iter (add inner) f.f_post
      end;
      add f.f_ws ("end " ^ f.f_kind);
      Buffer.add_buffer (cur_buf ()) b
    in
    let open_frame line clauses =
      let t = trim line in
      let ct = code_text t in
      if not (starts_with ~prefix:"DO " ct) then
        raise (Lift_error ("directive not followed by DO: " ^ t));
      let ws = leading_ws line in
      let hdr_rest = String.sub ct 3 (String.length ct - 3) in
      let ordered = List.mem_assoc "ordered" clauses in
      let get name =
        match List.assoc_opt name clauses with
        | Some p -> split_commas p
        | None -> []
      in
      let privates = get "private" in
      let firstpriv = get "firstprivate" in
      let reds =
        List.filter_map
          (fun (n, p) ->
            if n <> "reduction" then None
            else
              match String.index_opt p ':' with
              | Some i -> (
                  let op = trim (String.sub p 0 i) in
                  let v = trim (String.sub p (i + 1) (String.length p - i - 1)) in
                  match R.op_of_clause op with
                  | Some o -> Some (o, v)
                  | None -> raise (Lift_error ("bad reduction op: " ^ op)))
              | None -> raise (Lift_error ("bad reduction clause: " ^ p)))
          clauses
      in
      (* firstprivate inits were hoisted just before the directive: pull
         them back into the preamble (newest first) *)
      let fp_inits =
        List.map
          (fun v ->
            match
              pop_last (fun l -> starts_with ~prefix:(v ^ " =") (trim l))
            with
            | Some l -> trim l
            | None -> raise (Lift_error ("missing firstprivate init: " ^ v)))
          (List.rev firstpriv)
        |> List.rev
      in
      let local_decl v =
        match Hashtbl.find_opt decls v with
        | Some d -> d
        | None -> implicit_decl v
      in
      let machinery =
        List.map
          (fun (op, v) ->
            incr fresh;
            let partial = Printf.sprintf "%s_q%d" v !fresh in
            let ty = decl_type (local_decl v) in
            let pdecl =
              (match ty with
              | Integer -> "integer "
              | Double -> "double precision "
              | Logical -> "logical "
              | Character -> "character "
              | Real -> "real ")
              ^ partial
            in
            ( pdecl,
              Printf.sprintf "%s = %s" partial (identity_text op ty),
              merge_text op v partial,
              (v, partial) ))
          reds
      in
      let kind = if ordered then "cdoacross" else "cdoall" in
      emit (ws ^ kind ^ " " ^ hdr_rest);
      stack :=
        {
          f_ws = ws;
          f_kind = kind;
          f_locals =
            List.map local_decl (privates @ firstpriv)
            @ List.map (fun (d, _, _, _) -> d) machinery;
          f_pre = fp_inits @ List.map (fun (_, i, _, _) -> i) machinery;
          f_post =
            (match machinery with
            | [] -> []
            | _ ->
                ("call lock(1)" :: List.map (fun (_, _, m, _) -> m) machinery)
                @ [ "call unlock(1)" ]);
          f_renames = List.map (fun (_, _, _, r) -> r) machinery;
          f_depth = 1;
          f_lines = Buffer.create 256;
        }
        :: !stack
    in
    let process line =
      let t = trim line in
      if t = "" then emit line
      else if is_directive line then begin
        let dt = directive_text line in
        let ws = leading_ws line in
        if starts_with ~prefix:"parallel do" dt then
          pending :=
            Some (parse_clauses (String.sub dt 11 (String.length dt - 11)))
        else if starts_with ~prefix:"end parallel do" dt then ()
        else if starts_with ~prefix:"ordered depend(source" dt then
          emit (ws ^ "call advance(1)")
        else if starts_with ~prefix:"ordered depend(sink" dt then begin
          let payload =
            match String.index_opt dt ':' with
            | Some i -> (
                let rest = String.sub dt (i + 1) (String.length dt - i - 1) in
                match String.rindex_opt rest ')' with
                | Some j -> String.sub rest 0 j
                | None -> rest)
            | None -> raise (Lift_error ("bad sink clause: " ^ dt))
          in
          let d =
            match String.index_opt payload '-' with
            | Some i ->
                trim (String.sub payload (i + 1) (String.length payload - i - 1))
            | None -> "0"
          in
          emit (ws ^ Printf.sprintf "call await(1, %s)" d)
        end
        else if starts_with ~prefix:"end critical" dt then
          emit (ws ^ Printf.sprintf "call unlock(%s)" (critical_id dt))
        else if starts_with ~prefix:"critical" dt then
          emit (ws ^ Printf.sprintf "call lock(%s)" (critical_id dt))
        else if starts_with ~prefix:"threadprivate" dt then ()
        else raise (Lift_error ("unknown directive: " ^ dt))
      end
      else
        match !pending with
        | Some clauses ->
            pending := None;
            open_frame line clauses
        | None ->
            let ct = code_text t in
            let lower_ct = String.lowercase_ascii ct in
            (if !stack = [] then
               match parse_decl_line ct with
               | Some (name, text) -> Hashtbl.replace decls name text
               | None -> ());
            (* a named common with no threadprivate mark is process-shared *)
            let line =
              if !stack = [] && starts_with ~prefix:"common" lower_ct then begin
                let blkname =
                  match String.index_opt ct '/' with
                  | Some i -> (
                      match String.index_from_opt ct (i + 1) '/' with
                      | Some j -> String.sub ct (i + 1) (j - i - 1)
                      | None -> "")
                  | None -> ""
                in
                if blkname <> "" && Hashtbl.mem threadpriv blkname then line
                else leading_ws line ^ "process " ^ t
              end
              else line
            in
            (* body renames of every open frame (shared -> partial) *)
            let line =
              List.fold_left
                (fun l f ->
                  List.fold_left
                    (fun l (shared, partial) ->
                      rename_word ~from:shared ~into:partial l)
                    l f.f_renames)
                line !stack
            in
            if lower_ct = "enddo" && !stack <> [] then begin
              let f = List.hd !stack in
              f.f_depth <- f.f_depth - 1;
              if f.f_depth = 0 then begin
                stack := List.tl !stack;
                close_frame f
              end
              else emit line
            end
            else begin
              (match !stack with
              | f :: _ when starts_with ~prefix:"do " lower_ct ->
                  f.f_depth <- f.f_depth + 1
              | _ -> ());
              if ct = "end" && !stack = [] then Hashtbl.reset decls;
              emit line
            end
    in
    List.iter process raw;
    (match !stack with
    | [] -> ()
    | _ -> raise (Lift_error "input ended inside a parallel loop"));
    if !pending <> None then
      raise (Lift_error "parallel do directive not followed by a loop");
    Ok (Buffer.contents out)
  with Lift_error m -> Error m
