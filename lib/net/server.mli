(** The cedarnet TCP front-end: puts a {!Service.Server} on the network.

    One accept thread plus a reader/responder thread pair per
    connection.  Requests on one connection may be pipelined: the reader
    admits each {!Wire.Submit} into the service pool without waiting for
    earlier replies, and the responder streams results back in
    submission order, each echoing its request id.

    {b Admission control.}  Two budgets shed load explicitly instead of
    queuing without bound: at most [max_conns] connections are served at
    once (excess connections receive one [R_overloaded] frame and are
    closed), and at most [max_inflight] submits may be outstanding
    inside the service across all connections (excess submits are
    answered [R_overloaded] immediately).  A submit the service queue
    itself cannot take (bounded queue full) is also shed.

    {b Deadlines and hygiene.}  [read_timeout_s] bounds how long a
    request may take to arrive once its first byte is seen (a stalled
    sender is dropped; a merely idle connection is not), and
    [write_timeout_s] bounds each reply write.  Submits whose source
    exceeds [max_source_bytes] are rejected with a typed
    [R_too_large] before any parsing — oversized frames are drained in
    constant memory, so the connection survives the rejection.

    {b Observability.}  Every submit carries (or is minted) an
    {!Obs.Trace} id that rides the job end to end and returns in the
    reply; connection/request/shed/bytes counters land in
    {!Obs.Metrics.global}.

    {b Chaos.}  An attached {!Service.Fault} injector with network
    sites armed attacks the wire itself: accepted connections dropped,
    reads stalled, replies truncated mid-frame or replaced with
    garbage. *)

type cfg = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 = ephemeral (read it back with {!port}) *)
  max_conns : int;  (** accepted-connection budget *)
  max_inflight : int;  (** outstanding-submit budget, all connections *)
  max_source_bytes : int;  (** submit-source cap; 0 = unlimited *)
  read_timeout_s : float;  (** per-request read deadline; 0 = none *)
  write_timeout_s : float;  (** per-reply write deadline; 0 = none *)
}

val default_cfg : cfg
(** 127.0.0.1:0, 64 connections, 256 in flight, 8 MiB source cap,
    30 s read and write deadlines. *)

type t

(** A topology change pushed down from the cluster proxy over the wire
    (protocol v3): [`Add (id, host, port)] or [`Remove id]. *)
type cluster_change = [ `Add of string * string * int | `Remove of string ]

val create :
  ?fault:Service.Fault.t ->
  ?on_cluster_change:(cluster_change -> bool * int * string) ->
  cfg ->
  Service.Server.t ->
  t
(** Bind, listen, and start accepting.  The service pool is {e not}
    owned: shutting it down is the caller's job (after {!drain}).

    [on_cluster_change] handles {!Wire.Cluster_add} / [Cluster_remove]
    frames (a replicating shard re-aims its successor pushes at the new
    ring); it returns [(ok, epoch, message)], echoed back as a
    {!Wire.Cluster_ack}.  Without it those frames are acked
    [ack_ok = false].
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually-bound port (resolves [port = 0]). *)

val request_stop : t -> unit
(** Ask the server to stop — callable from a signal handler (it only
    sets an atomic flag).  {!wait_stop} returns shortly after. *)

val stop_requested : t -> bool

val wait_stop : t -> unit
(** Block until {!request_stop} is called (signal path) or a
    {!Wire.Shutdown_req} frame arrives (wire path). *)

val drain : t -> unit
(** Graceful drain: stop accepting, shut the read side of every
    connection (no new requests), let every in-flight request finish
    and its reply flush, then join all connection threads.  Idempotent.
    The caller then runs {!Service.Server.shutdown} to flush stats. *)

val connections_seen : t -> int
val inflight_high_water : t -> int
(** Most submits ever outstanding at once — proves the in-flight budget
    held under overload. *)

val shed_total : t -> int
(** Requests/connections answered [R_overloaded]. *)
