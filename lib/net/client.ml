type cfg = {
  host : string;
  port : int;
  connect_timeout_s : float;
  request_timeout_s : float;
  max_attempts : int;
  backoff_s : float;
  backoff_jitter : float;
  backoff_seed : int;
}

let default_cfg ~port =
  {
    host = "127.0.0.1";
    port;
    connect_timeout_s = 5.0;
    request_timeout_s = 120.0;
    max_attempts = 5;
    backoff_s = 0.1;
    backoff_jitter = 0.5;
    backoff_seed = 0x5eed;
  }

type t = {
  cfg : cfg;
  instance : int;  (* decorrelates jitter streams across clients *)
  mutable fd : Unix.file_descr option;
  mutable next_id : int;
}

(* ------------------------------------------------------------------ *)
(* Jittered backoff                                                    *)
(* ------------------------------------------------------------------ *)

(* splitmix64 finalizer (same mixer as Service.Fault): one pass is
   enough to turn (seed, instance, attempt) into decorrelated bits *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Deterministic jittered exponential backoff.  The naive doubling
   schedule reconnects every waiting client in lockstep after a server
   restart (thundering herd); spreading each step uniformly over
   [base*2^k*(1-j), base*2^k*(1+j)) breaks the synchrony while keeping
   the same expected delay.  Pure so tests can pin the schedule. *)
let backoff_delay cfg ~instance ~attempt =
  let base = cfg.backoff_s *. (2.0 ** float_of_int (max 0 (attempt - 1))) in
  let j = max 0.0 (min 1.0 cfg.backoff_jitter) in
  if j = 0.0 then base
  else
    let bits =
      mix64
        (Int64.of_int (cfg.backoff_seed lxor (instance * 0x1000003) lxor attempt))
    in
    (* 53 uniform bits -> u in [0, 1) *)
    let u =
      Int64.to_float (Int64.shift_right_logical bits 11) /. 9007199254740992.0
    in
    base *. (1.0 -. j +. (2.0 *. j *. u))

let instance_counter = Atomic.make 0

(* ------------------------------------------------------------------ *)
(* Connection establishment                                            *)
(* ------------------------------------------------------------------ *)

(* Non-blocking connect + select: a down host fails within
   [connect_timeout_s] instead of the kernel's minutes-long default. *)
let connect_once cfg =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let fail msg =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error msg
  in
  match Unix.inet_addr_of_string cfg.host with
  | exception Failure _ -> fail (Printf.sprintf "bad host %S" cfg.host)
  | addr -> (
      let sockaddr = Unix.ADDR_INET (addr, cfg.port) in
      Unix.set_nonblock fd;
      let pending =
        match Unix.connect fd sockaddr with
        | () -> Ok false
        | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> Ok true
        | exception Unix.Unix_error (e, _, _) ->
            Error (Unix.error_message e)
      in
      match pending with
      | Error msg ->
          fail
            (Printf.sprintf "connect %s:%d: %s" cfg.host cfg.port msg)
      | Ok wait -> (
          let ready =
            if not wait then true
            else
              (* poll, not select: a client in a process already holding
                 hundreds of connections has descriptors past FD_SETSIZE *)
              match Aio.poll_fd fd `Write ~timeout_s:cfg.connect_timeout_s with
              | ready -> ready
              | exception Unix.Unix_error _ -> false
          in
          if not ready then
            fail
              (Printf.sprintf "connect %s:%d: timed out after %.1fs"
                 cfg.host cfg.port cfg.connect_timeout_s)
          else
            match Unix.getsockopt_error fd with
            | Some e ->
                fail
                  (Printf.sprintf "connect %s:%d: %s" cfg.host cfg.port
                     (Unix.error_message e))
            | None ->
                Unix.clear_nonblock fd;
                (try Unix.setsockopt fd Unix.TCP_NODELAY true
                 with Unix.Unix_error _ -> ());
                if cfg.request_timeout_s > 0.0 then begin
                  (try
                     Unix.setsockopt_float fd Unix.SO_RCVTIMEO
                       cfg.request_timeout_s
                   with Unix.Unix_error _ -> ());
                  try
                    Unix.setsockopt_float fd Unix.SO_SNDTIMEO
                      cfg.request_timeout_s
                  with Unix.Unix_error _ -> ()
                end;
                Ok fd))

let connect_with_backoff ?(instance = 0) cfg =
  let rec go attempt last_err =
    if attempt > cfg.max_attempts then
      Error
        (Printf.sprintf "giving up after %d attempts: %s" cfg.max_attempts
           last_err)
    else
      match connect_once cfg with
      | Ok fd -> Ok fd
      | Error msg ->
          if attempt = cfg.max_attempts then
            Error
              (Printf.sprintf "giving up after %d attempts: %s"
                 cfg.max_attempts msg)
          else begin
            Thread.delay (backoff_delay cfg ~instance ~attempt);
            go (attempt + 1) msg
          end
  in
  go 1 "no attempt made"

let connect cfg =
  let instance = Atomic.fetch_and_add instance_counter 1 in
  match connect_with_backoff ~instance cfg with
  | Ok fd -> Ok { cfg; instance; fd = Some fd; next_id = 1 }
  | Error _ as e -> e

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Request/reply                                                       *)
(* ------------------------------------------------------------------ *)

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let current_fd t =
  match t.fd with
  | Some fd -> Ok fd
  | None -> (
      match connect_with_backoff ~instance:t.instance t.cfg with
      | Ok fd ->
          t.fd <- Some fd;
          Ok fd
      | Error _ as e -> e)

let drop_connection t =
  match t.fd with
  | None -> ()
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* One attempt: send the frame, wait for the frame echoing [id] (or an
   unsolicited id-0 reply such as the accept-time Overloaded shed).
   [`Retry] means the connection is dead and the request may be resent
   on a fresh one; [`Fatal] means retrying cannot help. *)
let attempt t fd ~id msg =
  match Wire.write_frame fd ~id msg with
  | exception Unix.Unix_error (e, _, _) ->
      `Retry (Printf.sprintf "send: %s" (Unix.error_message e))
  | () ->
      let rec await () =
        match Wire.read_frame fd with
        | Wire.Frame (rid, reply) when rid = id || rid = 0 -> `Ok reply
        | Wire.Frame (_, _) -> await () (* stale reply from a past id *)
        | Wire.Idle | Wire.Stalled ->
            `Fatal
              (Printf.sprintf "request timed out after %.1fs"
                 t.cfg.request_timeout_s)
        | Wire.Eof -> `Retry "connection closed by server"
        | Wire.Oversized (_, got) ->
            `Fatal (Printf.sprintf "reply too large: %d bytes" got)
        | Wire.Fail err -> `Retry (Wire.error_to_string err)
      in
      await ()

let request t msg =
  match current_fd t with
  | Error _ as e -> e
  | Ok fd -> (
      let id = fresh_id t in
      match attempt t fd ~id msg with
      | `Ok reply -> Ok reply
      | `Fatal msg -> Error msg
      | `Retry why -> (
          (* reconnect with backoff and resend exactly once: the server
             side is idempotent (content-addressed cache) *)
          drop_connection t;
          match current_fd t with
          | Error msg ->
              Error (Printf.sprintf "%s; reconnect failed: %s" why msg)
          | Ok fd -> (
              match attempt t fd ~id msg with
              | `Ok reply -> Ok reply
              | `Fatal msg -> Error msg
              | `Retry msg ->
                  drop_connection t;
                  Error
                    (Printf.sprintf "%s; after reconnect: %s" why msg))))

let unexpected what got =
  Error
    (Printf.sprintf "expected %s, got %s frame" what
       (Wire.message_kind_name got))

let ping t =
  let t0 = Unix.gettimeofday () in
  match request t Wire.Ping with
  | Ok Wire.Pong -> Ok (Unix.gettimeofday () -. t0)
  | Ok (Wire.Result (Wire.R_error m)) -> Error m
  | Ok other -> unexpected "Pong" other
  | Error _ as e -> e

let submit ?(trace = 0) t ~name ~options source =
  let msg =
    Wire.Submit
      {
        Wire.sub_name = name;
        sub_source = source;
        sub_options = options;
        sub_trace = trace;
      }
  in
  match request t msg with
  | Ok (Wire.Result reply) -> Ok reply
  | Ok other -> unexpected "Result" other
  | Error _ as e -> e

let stats t =
  match request t Wire.Stats_req with
  | Ok (Wire.Stats_text s) -> Ok s
  | Ok (Wire.Result (Wire.R_error m)) -> Error m
  | Ok other -> unexpected "Stats_text" other
  | Error _ as e -> e

let metrics t =
  match request t Wire.Metrics_req with
  | Ok (Wire.Metrics_text s) -> Ok s
  | Ok (Wire.Result (Wire.R_error m)) -> Error m
  | Ok other -> unexpected "Metrics_text" other
  | Error _ as e -> e

let stats_json t =
  match request t Wire.Stats_json_req with
  | Ok (Wire.Stats_json s) -> Ok s
  | Ok (Wire.Result (Wire.R_error m)) -> Error m
  | Ok other -> unexpected "Stats_json" other
  | Error _ as e -> e

let metrics_json t =
  match request t Wire.Metrics_json_req with
  | Ok (Wire.Metrics_json s) -> Ok s
  | Ok (Wire.Result (Wire.R_error m)) -> Error m
  | Ok other -> unexpected "Metrics_json" other
  | Error _ as e -> e

let members t =
  match request t Wire.Members_req with
  | Ok (Wire.Members_text s) -> Ok s
  | Ok (Wire.Result (Wire.R_error m)) -> Error m
  | Ok other -> unexpected "Members_text" other
  | Error _ as e -> e

let members_json t =
  match request t Wire.Members_json_req with
  | Ok (Wire.Members_json s) -> Ok s
  | Ok (Wire.Result (Wire.R_error m)) -> Error m
  | Ok other -> unexpected "Members_json" other
  | Error _ as e -> e

let cluster_add t (a : Wire.cluster_add) =
  match request t (Wire.Cluster_add a) with
  | Ok (Wire.Cluster_ack ack) -> Ok ack
  | Ok (Wire.Result (Wire.R_error m)) -> Error m
  | Ok other -> unexpected "Cluster_ack" other
  | Error _ as e -> e

let cluster_remove t shard_id =
  match request t (Wire.Cluster_remove shard_id) with
  | Ok (Wire.Cluster_ack ack) -> Ok ack
  | Ok (Wire.Result (Wire.R_error m)) -> Error m
  | Ok other -> unexpected "Cluster_ack" other
  | Error _ as e -> e

let cache_push t (p : Wire.cache_push) =
  match request t (Wire.Cache_push p) with
  | Ok (Wire.Cache_ack admitted) -> Ok admitted
  | Ok (Wire.Result (Wire.R_error m)) -> Error m
  | Ok other -> unexpected "Cache_ack" other
  | Error _ as e -> e

let shutdown t =
  match request t Wire.Shutdown_req with
  | Ok Wire.Shutdown_ack -> Ok ()
  | Ok (Wire.Result (Wire.R_error m)) -> Error m
  | Ok other -> unexpected "Shutdown_ack" other
  | Error _ as e -> e

(* ------------------------------------------------------------------ *)
(* Closed-loop socket driver                                           *)
(* ------------------------------------------------------------------ *)

type drive_cfg = {
  requests : int;
  conns : int;
  seed : int;
  size_jitter : int;
  batch : int;
  validate : bool;
  target : Codegen.Target.t;
}

let default_drive_cfg =
  { requests = 200; conns = 4; seed = 42; size_jitter = 4; batch = 4;
    validate = false; target = Codegen.Target.Cedar }

type drive_summary = {
  d_requests : int;
  d_done : int;
  d_cached : int;
  d_failed : int;
  d_timeout : int;
  d_cancelled : int;
  d_overloaded : int;
  d_too_large : int;
  d_errors : int;
  d_latencies : float array;
  d_wall_s : float;
}

type acc = {
  mutable a_done : int;
  mutable a_cached : int;
  mutable a_failed : int;
  mutable a_timeout : int;
  mutable a_cancelled : int;
  mutable a_overloaded : int;
  mutable a_too_large : int;
  mutable a_errors : int;
  mutable a_latencies : float list;
}

let drive cfg dcfg =
  let acc =
    {
      a_done = 0;
      a_cached = 0;
      a_failed = 0;
      a_timeout = 0;
      a_cancelled = 0;
      a_overloaded = 0;
      a_too_large = 0;
      a_errors = 0;
      a_latencies = [];
    }
  in
  let acc_mutex = Mutex.create () in
  let record f =
    Mutex.lock acc_mutex;
    f acc;
    Mutex.unlock acc_mutex
  in
  let next = Atomic.make 0 in
  let worker () =
    match connect cfg with
    | Error _ ->
        (* count every request this connection would have taken as a
           transport error, so the totals still add up *)
        let rec burn () =
          let i = Atomic.fetch_and_add next 1 in
          if i < dcfg.requests then begin
            record (fun a -> a.a_errors <- a.a_errors + 1);
            burn ()
          end
        in
        burn ()
    | Ok client ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < dcfg.requests then begin
            let req =
              Service.Traffic.nth_request ~validate:dcfg.validate
                ~target:dcfg.target
                ~seed:dcfg.seed ~size_jitter:dcfg.size_jitter
                ~batch:dcfg.batch i
            in
            let t0 = Unix.gettimeofday () in
            (match
               submit client ~name:req.Service.Server.req_name
                 ~options:req.Service.Server.req_options
                 req.Service.Server.req_source
             with
            | Ok reply ->
                let dt = Unix.gettimeofday () -. t0 in
                record (fun a ->
                    a.a_latencies <- dt :: a.a_latencies;
                    match reply with
                    | Wire.R_done { r_cached; _ } ->
                        a.a_done <- a.a_done + 1;
                        if r_cached then a.a_cached <- a.a_cached + 1
                    | Wire.R_failed _ -> a.a_failed <- a.a_failed + 1
                    | Wire.R_timeout -> a.a_timeout <- a.a_timeout + 1
                    | Wire.R_cancelled -> a.a_cancelled <- a.a_cancelled + 1
                    | Wire.R_overloaded ->
                        a.a_overloaded <- a.a_overloaded + 1
                    | Wire.R_too_large _ ->
                        a.a_too_large <- a.a_too_large + 1
                    | Wire.R_error _ -> a.a_errors <- a.a_errors + 1)
            | Error _ -> record (fun a -> a.a_errors <- a.a_errors + 1));
            loop ()
          end
        in
        loop ();
        close client
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init (max 1 dcfg.conns) (fun _ -> Thread.create worker ())
  in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let lat = Array.of_list acc.a_latencies in
  Array.sort compare lat;
  {
    d_requests = dcfg.requests;
    d_done = acc.a_done;
    d_cached = acc.a_cached;
    d_failed = acc.a_failed;
    d_timeout = acc.a_timeout;
    d_cancelled = acc.a_cancelled;
    d_overloaded = acc.a_overloaded;
    d_too_large = acc.a_too_large;
    d_errors = acc.a_errors;
    d_latencies = lat;
    d_wall_s = wall;
  }

let percentile p sorted =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank =
      int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1
    in
    sorted.(max 0 (min (n - 1) rank))

let drive_summary_to_string s =
  let thr =
    if s.d_wall_s > 0.0 then
      float_of_int (Array.length s.d_latencies) /. s.d_wall_s
    else 0.0
  in
  Printf.sprintf
    "requests=%d done=%d (cached=%d) failed=%d timeout=%d cancelled=%d \
     overloaded=%d too_large=%d transport_errors=%d | wall=%.2fs \
     %.1f req/s | rtt p50=%.1fms p95=%.1fms p99=%.1fms"
    s.d_requests s.d_done s.d_cached s.d_failed s.d_timeout s.d_cancelled
    s.d_overloaded s.d_too_large s.d_errors s.d_wall_s thr
    (1e3 *. percentile 50.0 s.d_latencies)
    (1e3 *. percentile 95.0 s.d_latencies)
    (1e3 *. percentile 99.0 s.d_latencies)
