(** Blocking cedarnet client: one TCP connection, synchronous
    request/reply, reconnect with exponential backoff.

    Every call times out rather than hangs: connection establishment is
    bounded by [connect_timeout_s] (non-blocking connect + select) and
    each request by [request_timeout_s] ([SO_RCVTIMEO]/[SO_SNDTIMEO] on
    the socket).  When the connection is found dead — send failure, EOF,
    a frame that does not decode — the client reconnects with jittered
    exponential backoff up to [max_attempts] and resends the request
    once on the fresh connection.  Requests are idempotent at the server (the result
    cache is content-addressed), so a resend after an ambiguous failure
    is safe.

    {!drive} is the closed-loop load generator over real sockets: the
    socket-side twin of {!Service.Traffic.run}, drawing the {e same}
    deterministic request sequence ({!Service.Traffic.nth_request}) so
    in-process and over-the-wire runs are comparable A/B. *)

type cfg = {
  host : string;
  port : int;
  connect_timeout_s : float;  (** bound on TCP connection establishment *)
  request_timeout_s : float;  (** bound on each request round trip; 0 = none *)
  max_attempts : int;  (** connection attempts, first one included *)
  backoff_s : float;  (** base retry delay; doubles per attempt *)
  backoff_jitter : float;
      (** jitter fraction in [0,1]: attempt [k] sleeps uniformly in
          [[backoff_s*2^k*(1-j), backoff_s*2^k*(1+j))].  0 restores the
          old lockstep doubling; the default 0.5 breaks the thundering
          herd of a client fleet reconnecting after a server restart. *)
  backoff_seed : int;  (** jitter stream seed (deterministic per seed) *)
}

val default_cfg : port:int -> cfg
(** 127.0.0.1, 5 s connect, 120 s request, 5 attempts, 100 ms backoff,
    jitter 0.5. *)

val backoff_delay : cfg -> instance:int -> attempt:int -> float
(** The exact delay slept before retrying [attempt] (1-based) on client
    number [instance].  Pure and deterministic — exposed so tests can
    pin the schedule.  Each connected client draws a fresh [instance]
    from a process-wide counter, decorrelating the streams even when
    every client shares one [cfg]. *)

type t

val connect : cfg -> (t, string) result
(** Establish the connection (with retries/backoff per [cfg]). *)

val close : t -> unit
(** Close the socket.  Idempotent; the handle is dead afterwards. *)

val request : t -> Wire.message -> (Wire.message, string) result
(** Send one message and wait for its reply (matched by request id).
    Reconnects and resends once if the connection proves dead. *)

val ping : t -> (float, string) result
(** Round-trip a {!Wire.Ping}; returns the RTT in seconds. *)

val submit :
  ?trace:int ->
  t ->
  name:string ->
  options:Restructurer.Options.t ->
  string ->
  (Wire.reply, string) result
(** Submit source text for restructuring.  [Ok] carries the server's
    typed reply — including [R_overloaded] and [R_too_large]; [Error]
    means the request could not be completed at all. *)

val stats : t -> (string, string) result
(** Fetch the human-readable {!Service.Stats} summary. *)

val metrics : t -> (string, string) result
(** Fetch the Prometheus text dump. *)

val stats_json : t -> (string, string) result
(** Fetch the machine-readable {!Service.Stats} JSON (protocol v2). *)

val metrics_json : t -> (string, string) result
(** Fetch the metrics registry as JSON (protocol v2). *)

val members : t -> (string, string) result
(** Fetch cluster membership as JSON.  Only a proxy answers this; a
    plain shard replies with a typed error. *)

val members_json : t -> (string, string) result
(** Fetch the enriched membership view (protocol v3): ring epoch,
    vnodes, per-shard state and replication counters.  Only a proxy
    answers this. *)

val cluster_add : t -> Wire.cluster_add -> (Wire.cluster_ack, string) result
(** Ask a proxy to add a shard to the member set (protocol v3).  The
    ack carries the resulting ring epoch; [ack_ok = false] means the
    set was left unchanged and [ack_msg] says why. *)

val cluster_remove : t -> string -> (Wire.cluster_ack, string) result
(** Ask a proxy to remove a shard from the member set (protocol v3). *)

val cache_push : t -> Wire.cache_push -> (bool, string) result
(** Offer a completed full-rung cache entry to the peer (warm-cache
    replication).  [Ok true] iff the peer verified the checksum and
    admitted it. *)

val shutdown : t -> (unit, string) result
(** Ask the server to shut down; [Ok] once the ack frame arrives. *)

(* ------------------------------------------------------------------ *)
(* Closed-loop socket driver                                           *)
(* ------------------------------------------------------------------ *)

type drive_cfg = {
  requests : int;  (** total jobs to issue *)
  conns : int;  (** concurrent connections, one outstanding job each *)
  seed : int;
  size_jitter : int;
  batch : int;
  validate : bool;
  target : Codegen.Target.t;  (** codegen target on every request *)
}

val default_drive_cfg : drive_cfg
(** 200 requests, 4 connections, seed 42, jitter 4, batch 4, Cedar. *)

type drive_summary = {
  d_requests : int;
  d_done : int;  (** [R_done] replies *)
  d_cached : int;  (** subset of [d_done] served from the cache *)
  d_failed : int;
  d_timeout : int;
  d_cancelled : int;
  d_overloaded : int;  (** shed by admission control *)
  d_too_large : int;
  d_errors : int;  (** transport failures (no typed reply at all) *)
  d_latencies : float array;  (** per-request round trip, seconds, sorted *)
  d_wall_s : float;
}

val drive : cfg -> drive_cfg -> drive_summary
(** Run the closed-loop generator: [conns] threads, each with its own
    connection, racing through the shared request sequence.  Returns
    when every request has a final disposition. *)

val percentile : float -> float array -> float
(** [percentile 95.0 sorted] — nearest-rank percentile of a sorted
    latency array; 0 on empty input. *)

val drive_summary_to_string : drive_summary -> string
