(* cedarnet wire protocol.  See wire.mli for the frame layout.

   The decoder is written against adversarial input: every read goes
   through a bounds-checked cursor, every enum byte is validated, and
   the only way out of a bad payload is the typed [error] — a garbage
   frame must never raise out of [decode] or [read_frame]. *)

let magic = "CDRN"
let version = 4
let min_version = 1
let header_bytes = 20
let hard_max_payload = 1 lsl 26 (* 64 MiB *)

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_kind of int
  | Truncated
  | Length_overflow of int
  | Malformed of string

let error_to_string = function
  | Bad_magic -> "bad magic (not a cedarnet frame)"
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Bad_kind k -> Printf.sprintf "unknown message kind %d" k
  | Truncated -> "truncated frame"
  | Length_overflow n ->
      Printf.sprintf "announced payload of %d bytes exceeds the %d-byte limit"
        n hard_max_payload
  | Malformed what -> Printf.sprintf "malformed payload: %s" what

type note = {
  n_unit : string;
  n_index : string;
  n_depth : int;
  n_decision : string;
  n_techniques : string list;
}

type submit = {
  sub_name : string;
  sub_source : string;
  sub_options : Restructurer.Options.t;
  sub_trace : int;
}

(* Warm-cache replication (protocol v2): a shard pushes a completed
   full-rung cache entry to its ring successor.  The rung is implicit —
   only full-rung results are ever cached, so only they replicate. *)
type cache_push = {
  cp_key : string;  (* content address minted on the origin shard *)
  cp_digest : string;  (* digest of [cp_text] at fill time *)
  cp_name : string;
  cp_text : string;
  cp_cycles : float option;
  cp_global_words : float option;
  cp_notes : note list;
}

(* Dynamic membership (protocol v3): an operator adds or removes a
   shard from a running proxy's member set.  The ack echoes the ring
   epoch the change produced, so a caller can assert convergence. *)
type cluster_add = { ca_id : string; ca_host : string; ca_port : int }
type cluster_ack = { ack_ok : bool; ack_epoch : int; ack_msg : string }

type reply =
  | R_done of {
      r_cached : bool;
      r_rung : Service.Server.rung;
      r_text : string;
      r_cycles : float option;
      r_global_words : float option;
      r_notes : note list;
      r_trace : int;
    }
  | R_failed of string
  | R_timeout
  | R_cancelled
  | R_overloaded
  | R_too_large of { limit : int; got : int }
  | R_error of string

type message =
  | Ping
  | Pong
  | Submit of submit
  | Result of reply
  | Stats_req
  | Stats_text of string
  | Metrics_req
  | Metrics_text of string
  | Shutdown_req
  | Shutdown_ack
  (* protocol v2 *)
  | Cache_push of cache_push
  | Cache_ack of bool
  | Stats_json_req
  | Stats_json of string
  | Metrics_json_req
  | Metrics_json of string
  | Members_req
  | Members_text of string
  (* protocol v3 *)
  | Cluster_add of cluster_add
  | Cluster_remove of string
  | Cluster_ack of cluster_ack
  | Members_json_req
  | Members_json of string

let kind_code = function
  | Ping -> 1
  | Pong -> 2
  (* a Submit for the default Cedar target keeps its original v1 kind
     (and byte layout), so new clients stay wire-compatible with old
     servers for everything old servers can do; only a non-default
     target needs the v4 kind *)
  | Submit s when s.sub_options.Restructurer.Options.target = Codegen.Target.Cedar
    -> 3
  | Submit _ -> 24
  | Result _ -> 4
  | Stats_req -> 5
  | Stats_text _ -> 6
  | Metrics_req -> 7
  | Metrics_text _ -> 8
  | Shutdown_req -> 9
  | Shutdown_ack -> 10
  | Cache_push _ -> 11
  | Cache_ack _ -> 12
  | Stats_json_req -> 13
  | Stats_json _ -> 14
  | Metrics_json_req -> 15
  | Metrics_json _ -> 16
  | Members_req -> 17
  | Members_text _ -> 18
  | Cluster_add _ -> 19
  | Cluster_remove _ -> 20
  | Cluster_ack _ -> 21
  | Members_json_req -> 22
  | Members_json _ -> 23

(* Frames carrying a v1 kind are stamped version 1, so a new peer stays
   wire-compatible with an old one for the whole original protocol; the
   v2 kinds are stamped 2, the v3 kinds 3 and the v4 kinds 4, so an old
   decoder rejects exactly (and only) the messages it cannot understand
   with a typed [Bad_version]. *)
let version_for_kind k =
  if k >= 24 then 4 else if k >= 19 then 3 else if k >= 11 then 2 else 1

let message_kind_name = function
  | Ping -> "ping"
  | Pong -> "pong"
  | Submit _ -> "submit"
  | Result _ -> "result"
  | Stats_req -> "stats-req"
  | Stats_text _ -> "stats"
  | Metrics_req -> "metrics-req"
  | Metrics_text _ -> "metrics"
  | Shutdown_req -> "shutdown-req"
  | Shutdown_ack -> "shutdown-ack"
  | Cache_push _ -> "cache-push"
  | Cache_ack _ -> "cache-ack"
  | Stats_json_req -> "stats-json-req"
  | Stats_json _ -> "stats-json"
  | Metrics_json_req -> "metrics-json-req"
  | Metrics_json _ -> "metrics-json"
  | Members_req -> "members-req"
  | Members_text _ -> "members"
  | Cluster_add _ -> "cluster-add"
  | Cluster_remove _ -> "cluster-remove"
  | Cluster_ack _ -> "cluster-ack"
  | Members_json_req -> "members-json-req"
  | Members_json _ -> "members-json"

(* conversions between the wire [note] and the driver's loop report,
   shared by every front-end that carries reports across the wire *)
let note_of_report (r : Restructurer.Driver.loop_report) =
  {
    n_unit = r.Restructurer.Driver.r_unit;
    n_index = r.Restructurer.Driver.r_index;
    n_depth = r.Restructurer.Driver.r_depth;
    n_decision = r.Restructurer.Driver.r_decision;
    n_techniques = r.Restructurer.Driver.r_techniques;
  }

(* the note carries the report's wire-visible subset; the fields that
   never crossed the wire (mode, blockers, version count) come back
   empty, exactly as the original reply path forgets them *)
let report_of_note (n : note) : Restructurer.Driver.loop_report =
  {
    Restructurer.Driver.r_unit = n.n_unit;
    r_index = n.n_index;
    r_depth = n.n_depth;
    r_decision = n.n_decision;
    r_mode = None;
    r_techniques = n.n_techniques;
    r_blockers = [];
    r_versions = 0;
  }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)
let put_bool b v = put_u8 b (if v then 1 else 0)
let put_int b v = Buffer.add_int64_be b (Int64.of_int v)
let put_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

let put_string b s =
  Buffer.add_int32_be b (Int32.of_int (String.length s));
  Buffer.add_string b s

let put_opt_f64 b = function
  | None -> put_u8 b 0
  | Some v ->
      put_u8 b 1;
      put_f64 b v

(* the 18 technique flags, in declaration order of Options.techniques —
   the wire bit position is the list position *)
let technique_getters =
  [
    (fun (t : Restructurer.Options.techniques) -> t.scalar_privatization);
    (fun t -> t.scalar_expansion);
    (fun t -> t.simple_induction);
    (fun t -> t.simple_reduction);
    (fun t -> t.doacross);
    (fun t -> t.stripmining);
    (fun t -> t.if_to_where);
    (fun t -> t.inline_expansion);
    (fun t -> t.loop_interchange);
    (fun t -> t.recurrence_substitution);
    (fun t -> t.array_privatization);
    (fun t -> t.generalized_reduction);
    (fun t -> t.giv_substitution);
    (fun t -> t.runtime_dep_test);
    (fun t -> t.critical_sections);
    (fun t -> t.interprocedural);
    (fun t -> t.loop_fusion);
    (fun t -> t.loop_distribution);
  ]

let techniques_mask (t : Restructurer.Options.techniques) =
  List.fold_left
    (fun (acc, bit) get -> ((acc lor if get t then 1 lsl bit else 0), bit + 1))
    (0, 0) technique_getters
  |> fst

let techniques_of_mask m : Restructurer.Options.techniques =
  let bit i = m land (1 lsl i) <> 0 in
  {
    scalar_privatization = bit 0;
    scalar_expansion = bit 1;
    simple_induction = bit 2;
    simple_reduction = bit 3;
    doacross = bit 4;
    stripmining = bit 5;
    if_to_where = bit 6;
    inline_expansion = bit 7;
    loop_interchange = bit 8;
    recurrence_substitution = bit 9;
    array_privatization = bit 10;
    generalized_reduction = bit 11;
    giv_substitution = bit 12;
    runtime_dep_test = bit 13;
    critical_sections = bit 14;
    interprocedural = bit 15;
    loop_fusion = bit 16;
    loop_distribution = bit 17;
  }

let put_machine b (m : Machine.Config.t) =
  put_string b m.name;
  put_int b m.clusters;
  put_int b m.ces_per_cluster;
  put_f64 b m.cache_hit;
  put_f64 b m.cluster_scalar;
  put_f64 b m.global_scalar;
  put_f64 b m.cluster_vector;
  put_f64 b m.global_vector;
  put_f64 b m.global_vector_prefetched;
  put_f64 b m.vector_startup;
  put_int b m.prefetch_depth;
  put_bool b m.prefetch;
  put_int b m.cache_bytes;
  put_f64 b m.cdo_startup;
  put_f64 b m.cdo_dispatch;
  put_f64 b m.sdo_startup;
  put_f64 b m.sdo_dispatch;
  put_f64 b m.await_cost;
  put_f64 b m.lock_cost;
  put_f64 b m.task_start_ctsk;
  put_f64 b m.task_start_mtsk;
  put_f64 b m.scalar_op;
  put_f64 b m.vector_op;
  put_f64 b m.intrinsic_op;
  put_int b m.cluster_mem_bytes;
  put_int b m.global_mem_bytes;
  put_int b m.page_bytes;
  put_f64 b m.page_fault_cycles;
  put_f64 b m.global_bw;
  put_f64 b m.cluster_bw

let put_options b (o : Restructurer.Options.t) =
  put_int b (techniques_mask o.techniques);
  put_machine b o.machine;
  put_int b o.max_versions;
  put_int b o.strip;
  put_int b o.inline_limits.Transform.Inline.max_depth;
  put_int b o.inline_limits.Transform.Inline.max_stmts;
  put_u8 b
    (match o.placement_default with
    | Transform.Globalize.Default_global -> 0
    | Transform.Globalize.Default_cluster -> 1);
  put_int b o.assumed_trip;
  put_bool b o.validate

let rung_code = function
  | Service.Server.Full -> 0
  | Service.Server.Conservative -> 1
  | Service.Server.Passthrough -> 2

let put_note b n =
  put_string b n.n_unit;
  put_string b n.n_index;
  put_int b n.n_depth;
  put_string b n.n_decision;
  put_int b (List.length n.n_techniques);
  List.iter (put_string b) n.n_techniques

let put_reply b = function
  | R_done d ->
      put_u8 b 0;
      put_bool b d.r_cached;
      put_u8 b (rung_code d.r_rung);
      put_string b d.r_text;
      put_opt_f64 b d.r_cycles;
      put_opt_f64 b d.r_global_words;
      put_int b (List.length d.r_notes);
      List.iter (put_note b) d.r_notes;
      put_int b d.r_trace
  | R_failed msg ->
      put_u8 b 1;
      put_string b msg
  | R_timeout -> put_u8 b 2
  | R_cancelled -> put_u8 b 3
  | R_overloaded -> put_u8 b 4
  | R_too_large { limit; got } ->
      put_u8 b 5;
      put_int b limit;
      put_int b got
  | R_error msg ->
      put_u8 b 6;
      put_string b msg

let payload_of = function
  | Ping | Pong | Stats_req | Metrics_req | Shutdown_req | Shutdown_ack
  | Stats_json_req | Metrics_json_req | Members_req | Members_json_req ->
      ""
  | Stats_text s | Metrics_text s | Stats_json s | Metrics_json s
  | Members_text s | Members_json s ->
      s
  | Submit s ->
      let b = Buffer.create (String.length s.sub_source + 256) in
      put_string b s.sub_name;
      put_string b s.sub_source;
      put_options b s.sub_options;
      put_int b s.sub_trace;
      (* the v4 Submit (kind 24) appends the target byte; a Cedar-target
         Submit travels as the byte-identical v1 kind 3 frame *)
      (match s.sub_options.Restructurer.Options.target with
      | Codegen.Target.Cedar -> ()
      | t -> put_u8 b (Codegen.Target.code t));
      Buffer.contents b
  | Result r ->
      let b = Buffer.create 256 in
      put_reply b r;
      Buffer.contents b
  | Cache_push p ->
      let b = Buffer.create (String.length p.cp_text + 256) in
      put_string b p.cp_key;
      put_string b p.cp_digest;
      put_string b p.cp_name;
      put_string b p.cp_text;
      put_opt_f64 b p.cp_cycles;
      put_opt_f64 b p.cp_global_words;
      put_int b (List.length p.cp_notes);
      List.iter (put_note b) p.cp_notes;
      Buffer.contents b
  | Cache_ack admitted ->
      let b = Buffer.create 1 in
      put_bool b admitted;
      Buffer.contents b
  | Cluster_add a ->
      let b = Buffer.create 64 in
      put_string b a.ca_id;
      put_string b a.ca_host;
      put_int b a.ca_port;
      Buffer.contents b
  | Cluster_remove id ->
      let b = Buffer.create 32 in
      put_string b id;
      Buffer.contents b
  | Cluster_ack a ->
      let b = Buffer.create 32 in
      put_bool b a.ack_ok;
      put_int b a.ack_epoch;
      put_string b a.ack_msg;
      Buffer.contents b

let encode ~id msg =
  let payload = payload_of msg in
  let b = Buffer.create (header_bytes + String.length payload) in
  Buffer.add_string b magic;
  put_u8 b (version_for_kind (kind_code msg));
  put_u8 b (kind_code msg);
  Buffer.add_uint16_be b 0;
  Buffer.add_int64_be b (Int64.of_int id);
  Buffer.add_int32_be b (Int32.of_int (String.length payload));
  Buffer.add_string b payload;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Err of error

(* The cursor reads straight out of a caller-owned byte window, so the
   incremental decoder parses payloads in place from the connection
   buffer — the payload as a whole is never copied; only the field
   strings a message actually carries are extracted.  The cursor never
   writes to [src]. *)
type cursor = { src : Bytes.t; mutable pos : int; limit : int }

let need c n =
  if n < 0 || c.pos + n > c.limit then raise (Err Truncated)

let get_u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.src c.pos) in
  c.pos <- c.pos + 1;
  v

let get_bool c =
  match get_u8 c with
  | 0 -> false
  | 1 -> true
  | v -> raise (Err (Malformed (Printf.sprintf "bool byte %d" v)))

let get_int c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_be c.src c.pos) in
  c.pos <- c.pos + 8;
  v

let get_f64 c =
  need c 8;
  let v = Int64.float_of_bits (Bytes.get_int64_be c.src c.pos) in
  c.pos <- c.pos + 8;
  v

let get_string c =
  need c 4;
  let n = Int32.to_int (Bytes.get_int32_be c.src c.pos) in
  c.pos <- c.pos + 4;
  if n < 0 then raise (Err (Malformed "negative string length"));
  need c n;
  let s = Bytes.sub_string c.src c.pos n in
  c.pos <- c.pos + n;
  s

let get_opt_f64 c =
  match get_u8 c with
  | 0 -> None
  | 1 -> Some (get_f64 c)
  | v -> raise (Err (Malformed (Printf.sprintf "option byte %d" v)))

let get_count c what =
  let n = get_int c in
  (* each element consumes at least one byte; anything bigger than the
     remaining payload is a lie, not a huge list *)
  if n < 0 || n > c.limit - c.pos then
    raise (Err (Malformed (Printf.sprintf "implausible %s count %d" what n)));
  n

let get_machine c : Machine.Config.t =
  let name = get_string c in
  let clusters = get_int c in
  let ces_per_cluster = get_int c in
  let cache_hit = get_f64 c in
  let cluster_scalar = get_f64 c in
  let global_scalar = get_f64 c in
  let cluster_vector = get_f64 c in
  let global_vector = get_f64 c in
  let global_vector_prefetched = get_f64 c in
  let vector_startup = get_f64 c in
  let prefetch_depth = get_int c in
  let prefetch = get_bool c in
  let cache_bytes = get_int c in
  let cdo_startup = get_f64 c in
  let cdo_dispatch = get_f64 c in
  let sdo_startup = get_f64 c in
  let sdo_dispatch = get_f64 c in
  let await_cost = get_f64 c in
  let lock_cost = get_f64 c in
  let task_start_ctsk = get_f64 c in
  let task_start_mtsk = get_f64 c in
  let scalar_op = get_f64 c in
  let vector_op = get_f64 c in
  let intrinsic_op = get_f64 c in
  let cluster_mem_bytes = get_int c in
  let global_mem_bytes = get_int c in
  let page_bytes = get_int c in
  let page_fault_cycles = get_f64 c in
  let global_bw = get_f64 c in
  let cluster_bw = get_f64 c in
  {
    Machine.Config.name;
    clusters;
    ces_per_cluster;
    cache_hit;
    cluster_scalar;
    global_scalar;
    cluster_vector;
    global_vector;
    global_vector_prefetched;
    vector_startup;
    prefetch_depth;
    prefetch;
    cache_bytes;
    cdo_startup;
    cdo_dispatch;
    sdo_startup;
    sdo_dispatch;
    await_cost;
    lock_cost;
    task_start_ctsk;
    task_start_mtsk;
    scalar_op;
    vector_op;
    intrinsic_op;
    cluster_mem_bytes;
    global_mem_bytes;
    page_bytes;
    page_fault_cycles;
    global_bw;
    cluster_bw;
  }

let get_options c : Restructurer.Options.t =
  let techniques = techniques_of_mask (get_int c) in
  let machine = get_machine c in
  let max_versions = get_int c in
  let strip = get_int c in
  let max_depth = get_int c in
  let max_stmts = get_int c in
  let placement_default =
    match get_u8 c with
    | 0 -> Transform.Globalize.Default_global
    | 1 -> Transform.Globalize.Default_cluster
    | v -> raise (Err (Malformed (Printf.sprintf "placement byte %d" v)))
  in
  let assumed_trip = get_int c in
  let validate = get_bool c in
  {
    Restructurer.Options.techniques;
    machine;
    max_versions;
    strip;
    inline_limits = { Transform.Inline.max_depth; max_stmts };
    placement_default;
    assumed_trip;
    validate;
    (* the v1 options block has no target field; kind 24 overrides *)
    target = Codegen.Target.Cedar;
  }

let get_note c =
  let n_unit = get_string c in
  let n_index = get_string c in
  let n_depth = get_int c in
  let n_decision = get_string c in
  let k = get_count c "technique" in
  let n_techniques = List.init k (fun _ -> get_string c) in
  { n_unit; n_index; n_depth; n_decision; n_techniques }

let get_reply c =
  match get_u8 c with
  | 0 ->
      let r_cached = get_bool c in
      let r_rung =
        match get_u8 c with
        | 0 -> Service.Server.Full
        | 1 -> Service.Server.Conservative
        | 2 -> Service.Server.Passthrough
        | v -> raise (Err (Malformed (Printf.sprintf "rung byte %d" v)))
      in
      let r_text = get_string c in
      let r_cycles = get_opt_f64 c in
      let r_global_words = get_opt_f64 c in
      let k = get_count c "note" in
      let r_notes = List.init k (fun _ -> get_note c) in
      let r_trace = get_int c in
      R_done
        { r_cached; r_rung; r_text; r_cycles; r_global_words; r_notes; r_trace }
  | 1 -> R_failed (get_string c)
  | 2 -> R_timeout
  | 3 -> R_cancelled
  | 4 -> R_overloaded
  | 5 ->
      let limit = get_int c in
      let got = get_int c in
      R_too_large { limit; got }
  | 6 -> R_error (get_string c)
  | v -> raise (Err (Malformed (Printf.sprintf "reply tag %d" v)))

let get_submit c =
  let sub_name = get_string c in
  let sub_source = get_string c in
  let sub_options = get_options c in
  let sub_trace = get_int c in
  { sub_name; sub_source; sub_options; sub_trace }

let get_cache_push c =
  let cp_key = get_string c in
  let cp_digest = get_string c in
  let cp_name = get_string c in
  let cp_text = get_string c in
  let cp_cycles = get_opt_f64 c in
  let cp_global_words = get_opt_f64 c in
  let k = get_count c "note" in
  let cp_notes = List.init k (fun _ -> get_note c) in
  { cp_key; cp_digest; cp_name; cp_text; cp_cycles; cp_global_words; cp_notes }

(* decode a payload in place from the window [pos, pos + len) of [src]:
   the zero-copy entry point shared by the incremental stream decoder
   (which hands its connection buffer straight in), [read_frame] and
   [decode].  The window is only read, never aliased past the call —
   every string that survives is a fresh extraction. *)
let decode_payload_at kind src ~pos ~len =
  let c = { src; pos; limit = pos + len } in
  let empty msg =
    if len <> 0 then raise (Err (Malformed "nonempty payload"));
    msg
  in
  (* the whole payload is the message text *)
  let text () =
    c.pos <- c.limit;
    Bytes.sub_string src pos len
  in
  let msg =
    match kind with
    | 1 -> empty Ping
    | 2 -> empty Pong
    | 3 -> Submit (get_submit c)
    | 4 -> Result (get_reply c)
    | 5 -> empty Stats_req
    | 6 -> Stats_text (text ())
    | 7 -> empty Metrics_req
    | 8 -> Metrics_text (text ())
    | 9 -> empty Shutdown_req
    | 10 -> empty Shutdown_ack
    | 11 -> Cache_push (get_cache_push c)
    | 12 -> Cache_ack (get_bool c)
    | 13 -> empty Stats_json_req
    | 14 -> Stats_json (text ())
    | 15 -> empty Metrics_json_req
    | 16 -> Metrics_json (text ())
    | 17 -> empty Members_req
    | 18 -> Members_text (text ())
    | 19 ->
        let ca_id = get_string c in
        let ca_host = get_string c in
        let ca_port = get_int c in
        Cluster_add { ca_id; ca_host; ca_port }
    | 20 -> Cluster_remove (get_string c)
    | 21 ->
        let ack_ok = get_bool c in
        let ack_epoch = get_int c in
        let ack_msg = get_string c in
        Cluster_ack { ack_ok; ack_epoch; ack_msg }
    | 22 -> empty Members_json_req
    | 23 -> Members_json (text ())
    | 24 ->
        let s = get_submit c in
        let target =
          match Codegen.Target.of_code (get_u8 c) with
          | Some t -> t
          | None -> raise (Err (Malformed "unknown codegen target"))
        in
        Submit
          {
            s with
            sub_options = { s.sub_options with Restructurer.Options.target };
          }
    | k -> raise (Err (Bad_kind k))
  in
  if c.pos <> c.limit then raise (Err (Malformed "trailing payload bytes"));
  msg

type header = { h_kind : int; h_id : int; h_len : int }

let magic_at src pos =
  Bytes.get src pos = magic.[0]
  && Bytes.get src (pos + 1) = magic.[1]
  && Bytes.get src (pos + 2) = magic.[2]
  && Bytes.get src (pos + 3) = magic.[3]

let decode_header_at src ~pos ~len =
  if len < header_bytes then Error Truncated
  else if not (magic_at src pos) then Error Bad_magic
  else
    let v = Char.code (Bytes.get src (pos + 4)) in
    if v < min_version || v > version then Error (Bad_version v)
    else
      let kind = Char.code (Bytes.get src (pos + 5)) in
      let id = Int64.to_int (Bytes.get_int64_be src (pos + 8)) in
      let plen = Int32.to_int (Bytes.get_int32_be src (pos + 16)) in
      if plen < 0 || plen > hard_max_payload then Error (Length_overflow plen)
      else Ok { h_kind = kind; h_id = id; h_len = plen }

(* [Bytes.unsafe_of_string] below is sound: the cursor and the header
   reader only ever read from [src] *)
let decode_header s =
  decode_header_at (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let decode s =
  match decode_header s with
  | Error e -> Error e
  | Ok h ->
      if String.length s < header_bytes + h.h_len then Error Truncated
      else if String.length s > header_bytes + h.h_len then
        Error (Malformed "trailing bytes after frame")
      else begin
        match
          decode_payload_at h.h_kind (Bytes.unsafe_of_string s)
            ~pos:header_bytes ~len:h.h_len
        with
        | msg -> Ok (h.h_id, msg)
        | exception Err e -> Error e
      end

(* ------------------------------------------------------------------ *)
(* Stream IO                                                           *)
(* ------------------------------------------------------------------ *)

let m_bytes_read =
  Obs.Metrics.counter Obs.Metrics.global ~help:"cedarnet bytes read"
    "net_bytes_read_total"

let m_bytes_written =
  Obs.Metrics.counter Obs.Metrics.global ~help:"cedarnet bytes written"
    "net_bytes_written_total"

type read_result =
  | Frame of int * message
  | Oversized of int * int
  | Idle
  | Stalled
  | Eof
  | Fail of error

(* [`Ok] when [len] bytes landed in [buf], [`Eof] on a clean close,
   [`Stalled consumed] when SO_RCVTIMEO expired *)
let really_read fd buf off len =
  let rec go off len consumed =
    if len = 0 then `Ok
    else
      match Unix.read fd buf off len with
      | 0 -> if consumed = 0 then `Eof else `Short
      | n ->
          Obs.Metrics.incr ~by:n m_bytes_read;
          go (off + n) (len - n) (consumed + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len consumed
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          `Stalled consumed
      | exception Unix.Unix_error (_, _, _) -> if consumed = 0 then `Eof else `Short
  in
  go off len 0

let drain_payload fd len =
  let chunk = Bytes.create 65536 in
  let rec go remaining =
    if remaining <= 0 then true
    else
      match Unix.read fd chunk 0 (min remaining (Bytes.length chunk)) with
      | 0 -> false
      | n ->
          Obs.Metrics.incr ~by:n m_bytes_read;
          go (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go remaining
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go len

let read_frame ?(max_payload = hard_max_payload) fd =
  let hdr = Bytes.create header_bytes in
  match really_read fd hdr 0 header_bytes with
  | `Eof -> Eof
  | `Short -> Fail Truncated
  | `Stalled consumed -> if consumed = 0 then Idle else Stalled
  | `Ok -> (
      match decode_header_at hdr ~pos:0 ~len:header_bytes with
      | Error e -> Fail e
      | Ok h ->
          if h.h_len > max_payload then
            if drain_payload fd h.h_len then Oversized (h.h_id, h.h_len)
            else Fail Truncated
          else
            let payload = Bytes.create h.h_len in
            (match really_read fd payload 0 h.h_len with
            | `Eof | `Short -> Fail Truncated
            | `Stalled _ -> Stalled
            | `Ok -> (
                match decode_payload_at h.h_kind payload ~pos:0 ~len:h.h_len with
                | msg -> Frame (h.h_id, msg)
                | exception Err e -> Fail e)))

(* ------------------------------------------------------------------ *)
(* Incremental stream decoder                                          *)
(* ------------------------------------------------------------------ *)

(* A resumable frame decoder for non-blocking readers: bytes go in via
   [feed] as they arrive, frames come out via [next].  Unlike
   [read_frame] it never touches a descriptor, so "the sender stalled"
   is not its concern — the caller observes [midframe] and arms an
   event-loop deadline, which is the only stall detection that means
   anything on a non-blocking descriptor (SO_RCVTIMEO does nothing
   there).  Oversized payloads are consumed into the void in constant
   memory, exactly like [read_frame]'s drain, so the stream stays
   synchronized across a typed rejection. *)
module Stream = struct
  type state =
    | S_header
    | S_payload of header
    | S_drain of { d_id : int; d_len : int; mutable d_left : int }
    | S_fail of error  (* sticky: an undecodable stream cannot resync *)

  type t = {
    st_max : int;
    mutable st_data : Bytes.t;  (* window [st_pos, st_pos + st_len) *)
    mutable st_pos : int;
    mutable st_len : int;
    mutable st_state : state;
  }

  let create ?(max_payload = hard_max_payload) () =
    {
      st_max = max_payload;
      st_data = Bytes.create 4096;
      st_pos = 0;
      st_len = 0;
      st_state = S_header;
    }

  let buffered st = st.st_len

  let feed st src off len =
    if off < 0 || len < 0 || off + len > Bytes.length src then
      invalid_arg "Wire.Stream.feed";
    let cap = Bytes.length st.st_data in
    if st.st_pos + st.st_len + len > cap then begin
      (* compact, then grow if the window still does not fit *)
      if st.st_pos > 0 then begin
        Bytes.blit st.st_data st.st_pos st.st_data 0 st.st_len;
        st.st_pos <- 0
      end;
      if st.st_len + len > cap then begin
        let cap' = ref (max 4096 cap) in
        while st.st_len + len > !cap' do
          cap' := !cap' * 2
        done;
        let data' = Bytes.create !cap' in
        Bytes.blit st.st_data 0 data' 0 st.st_len;
        st.st_data <- data'
      end
    end;
    Bytes.blit src off st.st_data (st.st_pos + st.st_len) len;
    st.st_len <- st.st_len + len

  let consume st n =
    st.st_pos <- st.st_pos + n;
    st.st_len <- st.st_len - n;
    if st.st_len = 0 then st.st_pos <- 0

  (* headers and payloads decode in place at the window offset — the
     warm path never materializes a payload-sized copy; only the field
     strings the message carries are extracted *)
  let rec next st =
    match st.st_state with
    | S_fail e -> `Fail e
    | S_drain d ->
        let take = min st.st_len d.d_left in
        consume st take;
        d.d_left <- d.d_left - take;
        if d.d_left = 0 then begin
          st.st_state <- S_header;
          `Oversized (d.d_id, d.d_len)
        end
        else `Need_more
    | S_header ->
        if st.st_len < header_bytes then `Need_more
        else begin
          match decode_header_at st.st_data ~pos:st.st_pos ~len:st.st_len with
          | Error e ->
              st.st_state <- S_fail e;
              `Fail e
          | Ok h ->
              consume st header_bytes;
              if h.h_len > st.st_max then begin
                st.st_state <-
                  S_drain { d_id = h.h_id; d_len = h.h_len; d_left = h.h_len };
                next st
              end
              else begin
                st.st_state <- S_payload h;
                next st
              end
        end
    | S_payload h ->
        if st.st_len < h.h_len then `Need_more
        else begin
          match
            decode_payload_at h.h_kind st.st_data ~pos:st.st_pos ~len:h.h_len
          with
          | msg ->
              consume st h.h_len;
              st.st_state <- S_header;
              `Frame (h.h_id, msg)
          | exception Err e ->
              st.st_state <- S_fail e;
              `Fail e
        end

  (* at least one byte of an incomplete frame is pending: the peer
     started a request and has not finished it.  This is the predicate
     the event loop turns into a per-frame deadline — the successor to
     read_frame's [Stalled], which depended on SO_RCVTIMEO and so was
     meaningless on a non-blocking descriptor. *)
  let midframe st =
    match st.st_state with
    | S_payload _ | S_drain _ -> true
    | S_header -> st.st_len > 0
    | S_fail _ -> false
end

let write_raw fd s =
  (* sound: Unix.write only reads the buffer *)
  let b = Bytes.unsafe_of_string s in
  let rec go off len =
    if len > 0 then begin
      match Unix.write fd b off len with
      | n ->
          Obs.Metrics.incr ~by:n m_bytes_written;
          go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
    end
  in
  go 0 (Bytes.length b)

let write_frame fd ~id msg = write_raw fd (encode ~id msg)
