(* cedarnet TCP front-end.  See server.mli for the contract.

   Thread structure: one accept thread (woken for shutdown through a
   self-pipe, because closing a listening socket does not reliably wake
   a blocked accept), and per connection a reader thread plus a
   responder thread meeting at a bounded pending queue.  The reader
   decodes frames and admits submits into the service pool without
   waiting for earlier replies (pipelining); the responder awaits each
   ticket in order and streams the replies back.  The pending queue's
   capacity exceeds the in-flight budget, so the reader never blocks on
   it and the drain path cannot deadlock.

   Budget accounting: [inflight] counts submits admitted into the
   service and not yet replied to, across all connections.  The reader
   increments it (with a CAS loop against the budget — excess submits
   are shed with R_overloaded, never queued), the responder decrements
   it after the reply is on the wire.  The high-water mark proves the
   bound held. *)

module M = Obs.Metrics
module Fault = Service.Fault
module Bq = Service.Bounded_queue

type cfg = {
  host : string;
  port : int;
  max_conns : int;
  max_inflight : int;
  max_source_bytes : int;
  read_timeout_s : float;
  write_timeout_s : float;
}

let default_cfg =
  {
    host = "127.0.0.1";
    port = 0;
    max_conns = 64;
    max_inflight = 256;
    max_source_bytes = 8 * 1024 * 1024;
    read_timeout_s = 30.0;
    write_timeout_s = 30.0;
  }

type pending = {
  pd_id : int;  (* request id to echo *)
  pd_ticket : Service.Server.ticket;
  pd_trace : int;
  pd_start : float;
}

type conn = {
  c_fd : Unix.file_descr;
  c_wmutex : Mutex.t;
  c_pending : pending Bq.t;
  c_alive : int Atomic.t;  (* reader + responder still running *)
  mutable c_dead : bool;  (* stop writing: write fault or IO error *)
  mutable c_rthread : Thread.t option;
  mutable c_wthread : Thread.t option;
}

type t = {
  svc : Service.Server.t;
  cfg : cfg;
  fault : Fault.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  wake_r : Unix.file_descr;  (* self-pipe: read side, in the accept select *)
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  draining : bool Atomic.t;
  inflight : int Atomic.t;
  inflight_hw : int Atomic.t;
  shed : int Atomic.t;
  conns_seen : int Atomic.t;
  conns_mutex : Mutex.t;
  mutable conns : conn list;
  mutable accept_thread : Thread.t option;
}

(* ------------------------------------------------------------------ *)
(* Registry instruments                                                *)
(* ------------------------------------------------------------------ *)

let m_conns_total =
  M.counter M.global ~help:"connections accepted" "net_connections_total"

let m_conns_active =
  M.gauge M.global ~help:"connections currently served" "net_connections_active"

let m_requests =
  M.counter M.global ~help:"wire requests received" "net_requests_total"

let m_shed =
  M.counter M.global
    ~help:"requests and connections answered Overloaded (load shed)"
    "net_shed_total"

let m_too_large =
  M.counter M.global ~help:"submits rejected by the source-size cap"
    "net_too_large_total"

let m_bad_frames =
  M.counter M.global ~help:"frames that failed to decode" "net_frames_bad_total"

let m_inflight =
  M.gauge M.global ~help:"submits admitted and not yet replied to"
    "net_requests_inflight"

let m_request_seconds =
  M.histogram M.global ~help:"wire request latency, admit to reply written"
    "net_request_seconds"

let now () = Unix.gettimeofday ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Writing (single point, so the chaos write faults cover every reply)  *)
(* ------------------------------------------------------------------ *)

let kill_conn conn =
  conn.c_dead <- true;
  try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let send t conn ~id msg =
  with_lock conn.c_wmutex (fun () ->
      if not conn.c_dead then
        if Fault.fire t.fault Fault.Trunc_write then begin
          (* cut the frame in half and drop the connection: the client
             must fail typed (Truncated/Eof), never hang or crash *)
          let s = Wire.encode ~id msg in
          (try Wire.write_raw conn.c_fd (String.sub s 0 (String.length s / 2))
           with Unix.Unix_error _ -> ());
          kill_conn conn
        end
        else if Fault.fire t.fault Fault.Garbage_frame then begin
          (try Wire.write_raw conn.c_fd (String.make Wire.header_bytes '\xa5')
           with Unix.Unix_error _ -> ());
          kill_conn conn
        end
        else
          try Wire.write_frame conn.c_fd ~id msg
          with Unix.Unix_error _ -> kill_conn conn)

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let reply_of_outcome trace (outcome : Service.Server.outcome) =
  match outcome with
  | Service.Server.Done { payload; cached } ->
      Wire.R_done
        {
          r_cached = cached;
          r_rung = payload.Service.Server.p_rung;
          r_text = payload.Service.Server.p_text;
          r_cycles = payload.Service.Server.p_cycles;
          r_global_words = payload.Service.Server.p_global_words;
          r_notes = List.map Wire.note_of_report payload.Service.Server.p_reports;
          r_trace = trace;
        }
  | Service.Server.Failed msg -> Wire.R_failed msg
  | Service.Server.Timeout -> Wire.R_timeout
  | Service.Server.Cancelled -> Wire.R_cancelled

let shed_request t conn ~id =
  Atomic.incr t.shed;
  M.incr m_shed;
  send t conn ~id (Wire.Result Wire.R_overloaded)

(* CAS admission against the in-flight budget *)
let rec try_reserve t =
  let cur = Atomic.get t.inflight in
  if cur >= t.cfg.max_inflight then false
  else if Atomic.compare_and_set t.inflight cur (cur + 1) then begin
    let rec bump_hw () =
      let hw = Atomic.get t.inflight_hw in
      if cur + 1 > hw then
        if Atomic.compare_and_set t.inflight_hw hw (cur + 1) then ()
        else bump_hw ()
    in
    bump_hw ();
    M.set_gauge m_inflight (float_of_int (Atomic.get t.inflight));
    true
  end
  else try_reserve t

let release t =
  Atomic.decr t.inflight;
  M.set_gauge m_inflight (float_of_int (Atomic.get t.inflight))

let admit_submit t conn ~id (s : Wire.submit) =
  let got = String.length s.Wire.sub_source in
  if t.cfg.max_source_bytes > 0 && got > t.cfg.max_source_bytes then begin
    (* request hygiene: typed rejection before the source reaches a
       parser — and before it reaches the service at all *)
    M.incr m_too_large;
    send t conn ~id
      (Wire.Result (Wire.R_too_large { limit = t.cfg.max_source_bytes; got }))
  end
  else if not (try_reserve t) then shed_request t conn ~id
  else begin
    let trace =
      if s.Wire.sub_trace <> 0 then s.Wire.sub_trace
      else if Obs.Trace.enabled () then Obs.Trace.fresh_trace_id ()
      else 0
    in
    let request =
      {
        Service.Server.req_name = s.Wire.sub_name;
        req_source = s.Wire.sub_source;
        req_options = s.Wire.sub_options;
      }
    in
    match Service.Server.try_submit ~trace t.svc request with
    | None ->
        (* the service queue itself had no room: shed, don't block *)
        release t;
        shed_request t conn ~id
    | Some ticket ->
        ignore
          (Bq.push conn.c_pending
             { pd_id = id; pd_ticket = ticket; pd_trace = trace;
               pd_start = now () })
  end

let dispatch t conn ~id msg =
  match msg with
  | Wire.Ping ->
      send t conn ~id Wire.Pong;
      `Continue
  | Wire.Submit s ->
      M.incr m_requests;
      admit_submit t conn ~id s;
      `Continue
  | Wire.Stats_req ->
      send t conn ~id
        (Wire.Stats_text (Service.Stats.to_string (Service.Server.stats t.svc)));
      `Continue
  | Wire.Metrics_req ->
      send t conn ~id (Wire.Metrics_text (M.dump M.global));
      `Continue
  | Wire.Stats_json_req ->
      send t conn ~id
        (Wire.Stats_json (Service.Stats.to_json (Service.Server.stats t.svc)));
      `Continue
  | Wire.Metrics_json_req ->
      send t conn ~id (Wire.Metrics_json (M.to_json M.global));
      `Continue
  | Wire.Cache_push p ->
      (* warm-cache replication from a ring peer: verify + admit, then
         ack with the verdict.  The payload is rebuilt exactly as the
         origin's cache held it; fields that never crossed the wire come
         back empty, same as the reply path. *)
      let payload =
        {
          Service.Server.p_name = p.Wire.cp_name;
          p_text = p.Wire.cp_text;
          p_reports = List.map Wire.report_of_note p.Wire.cp_notes;
          p_cycles = p.Wire.cp_cycles;
          p_global_words = p.Wire.cp_global_words;
          p_rung = Service.Server.Full;
        }
      in
      let admitted =
        Service.Server.admit_replica t.svc ~key:p.Wire.cp_key
          ~digest:p.Wire.cp_digest payload
      in
      send t conn ~id (Wire.Cache_ack admitted);
      `Continue
  | Wire.Members_req ->
      (* membership lives in the proxy; a plain shard has no view *)
      send t conn ~id
        (Wire.Result (Wire.R_error "not a cluster proxy: no membership view"));
      `Continue
  | Wire.Shutdown_req ->
      send t conn ~id Wire.Shutdown_ack;
      Atomic.set t.stop true;
      (* wake the accept select so the stop is noticed immediately *)
      (try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
       with Unix.Unix_error _ -> ());
      `Close
  | Wire.Pong | Wire.Result _ | Wire.Stats_text _ | Wire.Metrics_text _
  | Wire.Shutdown_ack | Wire.Cache_ack _ | Wire.Stats_json _
  | Wire.Metrics_json _ | Wire.Members_text _ ->
      send t conn ~id
        (Wire.Result
           (Wire.R_error
              (Printf.sprintf "unexpected %s frame from a client"
                 (Wire.message_kind_name msg))));
      `Close

(* ------------------------------------------------------------------ *)
(* Connection threads                                                  *)
(* ------------------------------------------------------------------ *)

let thread_finished t conn =
  if Atomic.fetch_and_add conn.c_alive (-1) = 1 then begin
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    M.add_gauge m_conns_active (-1.0);
    with_lock t.conns_mutex (fun () ->
        t.conns <- List.filter (fun c -> not (c == conn)) t.conns)
  end

let reader t conn =
  let cap =
    if t.cfg.max_source_bytes > 0 then t.cfg.max_source_bytes + 4096
    else Wire.hard_max_payload
  in
  let rec loop () =
    if conn.c_dead || Atomic.get t.draining then ()
    else begin
      if Fault.fire t.fault Fault.Read_stall then
        Thread.delay (Fault.delay_s t.fault);
      match Wire.read_frame ~max_payload:cap conn.c_fd with
      | Wire.Idle -> loop () (* quiet connection; deadlines are per request *)
      | Wire.Frame (id, msg) -> (
          match dispatch t conn ~id msg with
          | `Continue -> loop ()
          | `Close -> ())
      | Wire.Oversized (id, got) ->
          (* drained in constant memory: reject typed, keep the stream *)
          M.incr m_requests;
          M.incr m_too_large;
          send t conn ~id
            (Wire.Result (Wire.R_too_large { limit = cap; got }));
          loop ()
      | Wire.Stalled ->
          (* read deadline expired mid-request: drop the sender *)
          kill_conn conn
      | Wire.Eof -> ()
      | Wire.Fail err ->
          (* a frame that does not decode leaves the stream position
             unknowable; answer typed and drop the connection *)
          M.incr m_bad_frames;
          send t conn ~id:0
            (Wire.Result (Wire.R_error (Wire.error_to_string err)))
    end
  in
  (try loop () with _ -> ());
  (* no more requests will be admitted: let the responder finish the
     pending replies, then it closes the socket *)
  Bq.close conn.c_pending;
  thread_finished t conn

let responder t conn =
  let rec loop () =
    match Bq.pop conn.c_pending with
    | None -> ()
    | Some p ->
        let outcome = Service.Server.await p.pd_ticket in
        let reply = reply_of_outcome p.pd_trace outcome in
        send t conn ~id:p.pd_id (Wire.Result reply);
        release t;
        M.observe m_request_seconds (now () -. p.pd_start);
        if p.pd_trace <> 0 then
          Obs.Trace.with_trace_id p.pd_trace (fun () ->
              Obs.Trace.completed ~start_s:p.pd_start ~stop_s:(now ())
                ~attrs:[ ("request_id", string_of_int p.pd_id) ]
                "net_request");
        loop ()
  in
  (try loop () with _ -> ());
  thread_finished t conn

(* ------------------------------------------------------------------ *)
(* Accept loop                                                         *)
(* ------------------------------------------------------------------ *)

let handle_accept t fd =
  Atomic.incr t.conns_seen;
  M.incr m_conns_total;
  if Fault.fire t.fault Fault.Accept_drop then (
    try Unix.close fd with Unix.Unix_error _ -> ())
  else begin
    let active = with_lock t.conns_mutex (fun () -> List.length t.conns) in
    if active >= t.cfg.max_conns then begin
      (* connection budget exhausted: one explicit Overloaded frame,
         then the door closes — nothing queues *)
      Atomic.incr t.shed;
      M.incr m_shed;
      (try Wire.write_frame fd ~id:0 (Wire.Result Wire.R_overloaded)
       with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
    else begin
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      if t.cfg.read_timeout_s > 0.0 then
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.read_timeout_s
         with Unix.Unix_error _ -> ());
      if t.cfg.write_timeout_s > 0.0 then
        (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.write_timeout_s
         with Unix.Unix_error _ -> ());
      let conn =
        {
          c_fd = fd;
          c_wmutex = Mutex.create ();
          c_pending = Bq.create ~capacity:(t.cfg.max_inflight + 4);
          c_alive = Atomic.make 2;
          c_dead = false;
          c_rthread = None;
          c_wthread = None;
        }
      in
      with_lock t.conns_mutex (fun () -> t.conns <- conn :: t.conns);
      M.add_gauge m_conns_active 1.0;
      conn.c_wthread <- Some (Thread.create (fun () -> responder t conn) ());
      conn.c_rthread <- Some (Thread.create (fun () -> reader t conn) ())
    end
  end

let accept_loop t =
  while not (Atomic.get t.stop) do
    match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> Atomic.set t.stop true
    | ready, _, _ ->
        if List.mem t.wake_r ready then () (* woken: loop re-checks stop *)
        else if List.mem t.listen_fd ready then begin
          match Unix.accept t.listen_fd with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (_, _, _) -> Atomic.set t.stop true
          | fd, _addr -> handle_accept t fd
        end
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(fault = Fault.none) cfg svc =
  (* a peer that disappears mid-write must surface as EPIPE, not kill
     the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port) in
  (try Unix.bind listen_fd addr
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listen_fd 64;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      svc;
      cfg;
      fault;
      listen_fd;
      bound_port;
      wake_r;
      wake_w;
      stop = Atomic.make false;
      draining = Atomic.make false;
      inflight = Atomic.make 0;
      inflight_hw = Atomic.make 0;
      shed = Atomic.make 0;
      conns_seen = Atomic.make 0;
      conns_mutex = Mutex.create ();
      conns = [];
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let port t = t.bound_port

let request_stop t =
  Atomic.set t.stop true;
  (* wake the accept select; a single byte suffices and a full pipe
     means a wake-up is already pending *)
  try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
  with Unix.Unix_error _ -> ()

let stop_requested t = Atomic.get t.stop

let wait_stop t =
  while not (Atomic.get t.stop) do
    Thread.delay 0.05
  done

let drain t =
  if not (Atomic.exchange t.draining true) then begin
    request_stop t;
    (match t.accept_thread with
    | Some th ->
        Thread.join th;
        t.accept_thread <- None
    | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    (* stop the readers (no new requests), keep the writers: in-flight
       requests finish and their replies flush before the join *)
    let conns = with_lock t.conns_mutex (fun () -> t.conns) in
    List.iter
      (fun c ->
        try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      conns;
    List.iter
      (fun c ->
        (match c.c_rthread with Some th -> Thread.join th | None -> ());
        match c.c_wthread with Some th -> Thread.join th | None -> ())
      conns
  end

let connections_seen t = Atomic.get t.conns_seen
let inflight_high_water t = Atomic.get t.inflight_hw
let shed_total t = Atomic.get t.shed
