(* cedarnet TCP front-end.  See server.mli for the contract.

   Fiber structure (one Aio scheduler on one event-loop thread, replacing
   the former thread-per-connection design):

   - one accept fiber owning the listening socket;
   - per connection, three fibers replacing the old reader+responder
     thread pair: a reader (decodes frames off the non-blocking socket
     through Wire.Stream and admits submits without waiting on earlier
     replies — pipelining), a responder (awaits each admitted ticket in
     order and enqueues the replies), and a writer (the single point
     that touches the socket for output, so partial non-blocking writes
     from different producers can never interleave).  Control replies
     (Pong, stats, ...) and shed verdicts go straight from the reader to
     the writer's queue, exactly as the old reader wrote them directly.

   CPU-bound restructure work still runs on the Service.Server domain
   pool; the seam is the completion-queue bridge: the reader registers
   Service.Server.on_resolve -> Aio.fulfil on the ticket, the responder
   suspends in Aio.await, and the worker domain's resolution posts the
   wakeup through the scheduler's completion queue.  No OS thread ever
   parks per request.

   Read deadlines are event-loop timers now, not SO_RCVTIMEO (which is
   meaningless on a non-blocking descriptor): a connection with no
   partial frame buffered carries no deadline at all — ten thousand
   idle connections cost three suspended fibers and a poll slot each —
   while the moment the first byte of a frame arrives, the reader arms
   one absolute deadline for the whole frame, which is what finally
   defeats the 1-byte-per-second slow-loris sender the old per-read
   socket timeout never caught.

   Budget accounting is unchanged: [inflight] counts submits admitted
   into the service and not yet replied to, across all connections,
   CAS-reserved against the budget (excess submits shed with
   R_overloaded, never queued); the high-water mark proves the bound
   held.  The counters stay atomics because stats readers live on other
   threads. *)

module M = Obs.Metrics
module Fault = Service.Fault

type cfg = {
  host : string;
  port : int;
  max_conns : int;
  max_inflight : int;
  max_source_bytes : int;
  read_timeout_s : float;
  write_timeout_s : float;
}

let default_cfg =
  {
    host = "127.0.0.1";
    port = 0;
    max_conns = 64;
    max_inflight = 256;
    max_source_bytes = 8 * 1024 * 1024;
    read_timeout_s = 30.0;
    write_timeout_s = 30.0;
  }

(* a topology change pushed down from the cluster proxy; the handler
   (wired by cedard when it runs as a shard) returns the verdict and the
   epoch-like generation the change produced *)
type cluster_change = [ `Add of string * string * int | `Remove of string ]

type pending = {
  pd_id : int;  (* request id to echo *)
  pd_outcome : Service.Server.outcome Aio.promise;
  pd_trace : int;
  pd_start : float;
}

(* what the writer fiber is asked to put on the wire *)
type out_item =
  | O_frame of string  (* a complete encoded frame *)
  | O_kill of string
      (* chaos: write these raw bytes (possibly a truncated or garbage
         frame), then drop the connection *)

type conn = {
  c_fd : Unix.file_descr;
  c_pending : pending Aio.Mailbox.mb;
  c_out : out_item Aio.Mailbox.mb;
  mutable c_dead : bool;  (* stop writing: write fault or IO error *)
  mutable c_alive : int;  (* reader + responder + writer still running *)
}

type t = {
  svc : Service.Server.t;
  cfg : cfg;
  fault : Fault.t;
  on_cluster_change : (cluster_change -> bool * int * string) option;
  listen_fd : Unix.file_descr;
  bound_port : int;
  sched : Aio.t;
  stop : bool Atomic.t;
  draining : bool Atomic.t;
  inflight : int Atomic.t;
  inflight_hw : int Atomic.t;
  shed : int Atomic.t;
  conns_seen : int Atomic.t;
  scratch : Bytes.t;
      (* shared read buffer: fibers never suspend between reading into
         it and feeding the stream, so one buffer serves every
         connection — per-conn memory stays flat *)
  mutable conns : conn list;  (* loop thread only *)
  mutable accept_fiber : Aio.fiber option;
  mutable loop_thread : Thread.t option;
}

(* ------------------------------------------------------------------ *)
(* Registry instruments                                                *)
(* ------------------------------------------------------------------ *)

let m_conns_total =
  M.counter M.global ~help:"connections accepted" "net_connections_total"

let m_conns_active =
  M.gauge M.global ~help:"connections currently served" "net_connections_active"

let m_requests =
  M.counter M.global ~help:"wire requests received" "net_requests_total"

let m_shed =
  M.counter M.global
    ~help:"requests and connections answered Overloaded (load shed)"
    "net_shed_total"

let m_too_large =
  M.counter M.global ~help:"submits rejected by the source-size cap"
    "net_too_large_total"

let m_bad_frames =
  M.counter M.global ~help:"frames that failed to decode" "net_frames_bad_total"

let m_inflight =
  M.gauge M.global ~help:"submits admitted and not yet replied to"
    "net_requests_inflight"

let m_request_seconds =
  M.histogram M.global ~help:"wire request latency, admit to reply written"
    "net_request_seconds"

(* get-or-create: shared with the instruments in wire.ml *)
let m_bytes_read = M.counter M.global "net_bytes_read_total"
let m_bytes_written = M.counter M.global "net_bytes_written_total"

let m_flushes =
  M.counter M.global ~help:"batched socket flushes (one write per batch)"
    "net_flushes_total"

let m_flushed_frames =
  M.counter M.global ~help:"reply frames coalesced into batched flushes"
    "net_flushed_frames_total"

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Writing (a single writer fiber per connection, so the chaos write
   faults cover every reply and partial writes never interleave)       *)
(* ------------------------------------------------------------------ *)

let kill_conn conn =
  conn.c_dead <- true;
  try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let send t conn ~id msg =
  if not conn.c_dead then
    if Fault.fire t.fault Fault.Trunc_write then begin
      (* cut the frame in half and drop the connection: the client must
         fail typed (Truncated/Eof), never hang or crash *)
      let s = Wire.encode ~id msg in
      ignore
        (Aio.Mailbox.put conn.c_out
           (O_kill (String.sub s 0 (String.length s / 2))))
    end
    else if Fault.fire t.fault Fault.Garbage_frame then
      ignore
        (Aio.Mailbox.put conn.c_out
           (O_kill (String.make Wire.header_bytes '\xa5')))
    else ignore (Aio.Mailbox.put conn.c_out (O_frame (Wire.encode ~id msg)))

(* forward-declared so the three connection fibers can share it *)
let conn_finished t conn =
  conn.c_alive <- conn.c_alive - 1;
  if conn.c_alive = 0 then begin
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    M.add_gauge m_conns_active (-1.0);
    t.conns <- List.filter (fun c -> not (c == conn)) t.conns
  end

(* cap on one corked batch: a pipelined burst of multi-MB results still
   flushes in bounded contiguous memory *)
let max_batch_bytes = 256 * 1024

(* The writer corks: a blocking take yields the first item, then
   everything already queued behind it in the same scheduler pass is
   drained with [take_opt] and the whole batch goes out in ONE write —
   N pipelined replies cost one syscall, not N.  A chaos [O_kill] ends
   the batch: the frames queued before it flush (in order, in the same
   write), its raw bytes go last, and the connection drops. *)
let writer t conn =
  let rec loop () =
    match Aio.Mailbox.take conn.c_out with
    | None -> ()
    | Some first ->
        if conn.c_dead then loop ()
        else begin
          let kill = ref None in
          let frames = ref [] and bytes = ref 0 in
          let add s =
            frames := s :: !frames;
            bytes := !bytes + String.length s
          in
          (match first with O_frame s -> add s | O_kill s -> kill := Some s);
          let rec drain () =
            if !kill = None && !bytes < max_batch_bytes then
              match Aio.Mailbox.take_opt conn.c_out with
              | None -> ()
              | Some (O_frame s) ->
                  add s;
                  drain ()
              | Some (O_kill s) -> kill := Some s
          in
          drain ();
          let frames = List.rev !frames in
          let payload =
            match (frames, !kill) with
            | [ s ], None -> Bytes.unsafe_of_string s (* sound: write-only *)
            | fs, k ->
                let tail =
                  match k with Some s -> String.length s | None -> 0
                in
                let b = Bytes.create (!bytes + tail) in
                let off =
                  List.fold_left
                    (fun off s ->
                      Bytes.blit_string s 0 b off (String.length s);
                      off + String.length s)
                    0 fs
                in
                (match k with
                | Some s -> Bytes.blit_string s 0 b off (String.length s)
                | None -> ());
                b
          in
          let deadline =
            if t.cfg.write_timeout_s > 0.0 then
              Some (Aio.now () +. t.cfg.write_timeout_s)
            else None
          in
          (* counted before the write so a client that has read the
             whole batch is guaranteed to observe the flush *)
          M.incr m_flushes;
          M.incr ~by:(List.length frames) m_flushed_frames;
          (match
             Aio.write_all ?deadline conn.c_fd payload 0 (Bytes.length payload)
           with
          | `Ok -> M.incr ~by:(Bytes.length payload) m_bytes_written
          | `Deadline | `Closed -> kill_conn conn);
          (match !kill with Some _ -> kill_conn conn | None -> ());
          loop ()
        end
  in
  loop ();
  conn_finished t conn

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let reply_of_outcome trace (outcome : Service.Server.outcome) =
  match outcome with
  | Service.Server.Done { payload; cached } ->
      Wire.R_done
        {
          r_cached = cached;
          r_rung = payload.Service.Server.p_rung;
          r_text = payload.Service.Server.p_text;
          r_cycles = payload.Service.Server.p_cycles;
          r_global_words = payload.Service.Server.p_global_words;
          r_notes = List.map Wire.note_of_report payload.Service.Server.p_reports;
          r_trace = trace;
        }
  | Service.Server.Failed msg -> Wire.R_failed msg
  | Service.Server.Timeout -> Wire.R_timeout
  | Service.Server.Cancelled -> Wire.R_cancelled

let shed_request t conn ~id =
  Atomic.incr t.shed;
  M.incr m_shed;
  send t conn ~id (Wire.Result Wire.R_overloaded)

(* CAS admission against the in-flight budget *)
let rec try_reserve t =
  let cur = Atomic.get t.inflight in
  if cur >= t.cfg.max_inflight then false
  else if Atomic.compare_and_set t.inflight cur (cur + 1) then begin
    let rec bump_hw () =
      let hw = Atomic.get t.inflight_hw in
      if cur + 1 > hw then
        if Atomic.compare_and_set t.inflight_hw hw (cur + 1) then ()
        else bump_hw ()
    in
    bump_hw ();
    M.set_gauge m_inflight (float_of_int (Atomic.get t.inflight));
    true
  end
  else try_reserve t

let release t =
  Atomic.decr t.inflight;
  M.set_gauge m_inflight (float_of_int (Atomic.get t.inflight))

let admit_submit t conn ~id (s : Wire.submit) =
  let got = String.length s.Wire.sub_source in
  if t.cfg.max_source_bytes > 0 && got > t.cfg.max_source_bytes then begin
    (* request hygiene: typed rejection before the source reaches a
       parser — and before it reaches the service at all *)
    M.incr m_too_large;
    send t conn ~id
      (Wire.Result (Wire.R_too_large { limit = t.cfg.max_source_bytes; got }))
  end
  else if not (try_reserve t) then shed_request t conn ~id
  else begin
    let trace =
      if s.Wire.sub_trace <> 0 then s.Wire.sub_trace
      else if Obs.Trace.enabled () then Obs.Trace.fresh_trace_id ()
      else 0
    in
    let request =
      {
        Service.Server.req_name = s.Wire.sub_name;
        req_source = s.Wire.sub_source;
        req_options = s.Wire.sub_options;
      }
    in
    match Service.Server.try_submit ~trace t.svc request with
    | None ->
        (* the service queue itself had no room: shed, don't block *)
        release t;
        shed_request t conn ~id
    | Some ticket ->
        (* the completion-queue bridge: the worker domain that resolves
           the ticket fulfils the promise, which posts the responder's
           wakeup into the scheduler *)
        let outcome = Aio.promise () in
        Service.Server.on_resolve ticket (Aio.fulfil outcome);
        ignore
          (Aio.Mailbox.put conn.c_pending
             { pd_id = id; pd_outcome = outcome; pd_trace = trace;
               pd_start = now () })
  end

let dispatch t conn ~id msg =
  match msg with
  | Wire.Ping ->
      send t conn ~id Wire.Pong;
      `Continue
  | Wire.Submit s ->
      M.incr m_requests;
      admit_submit t conn ~id s;
      `Continue
  | Wire.Stats_req ->
      send t conn ~id
        (Wire.Stats_text (Service.Stats.to_string (Service.Server.stats t.svc)));
      `Continue
  | Wire.Metrics_req ->
      send t conn ~id (Wire.Metrics_text (M.dump M.global));
      `Continue
  | Wire.Stats_json_req ->
      send t conn ~id
        (Wire.Stats_json (Service.Stats.to_json (Service.Server.stats t.svc)));
      `Continue
  | Wire.Metrics_json_req ->
      send t conn ~id (Wire.Metrics_json (M.to_json M.global));
      `Continue
  | Wire.Cache_push p ->
      (* warm-cache replication from a ring peer: verify + admit, then
         ack with the verdict.  The payload is rebuilt exactly as the
         origin's cache held it; fields that never crossed the wire come
         back empty, same as the reply path. *)
      let payload =
        {
          Service.Server.p_name = p.Wire.cp_name;
          p_text = p.Wire.cp_text;
          p_reports = List.map Wire.report_of_note p.Wire.cp_notes;
          p_cycles = p.Wire.cp_cycles;
          p_global_words = p.Wire.cp_global_words;
          p_rung = Service.Server.Full;
        }
      in
      let admitted =
        Service.Server.admit_replica t.svc ~key:p.Wire.cp_key
          ~digest:p.Wire.cp_digest payload
      in
      send t conn ~id (Wire.Cache_ack admitted);
      `Continue
  | Wire.Members_req | Wire.Members_json_req ->
      (* membership lives in the proxy; a plain shard has no view *)
      send t conn ~id
        (Wire.Result (Wire.R_error "not a cluster proxy: no membership view"));
      `Continue
  | Wire.Cluster_add a -> (
      (* topology change pushed down from the proxy: a shard that
         replicates re-aims its successor pushes at the new ring *)
      match t.on_cluster_change with
      | Some f ->
          let ok, epoch, msg =
            f (`Add (a.Wire.ca_id, a.Wire.ca_host, a.Wire.ca_port))
          in
          send t conn ~id
            (Wire.Cluster_ack { ack_ok = ok; ack_epoch = epoch; ack_msg = msg });
          `Continue
      | None ->
          send t conn ~id
            (Wire.Cluster_ack
               { ack_ok = false; ack_epoch = 0;
                 ack_msg = "shard runs without a cluster view" });
          `Continue)
  | Wire.Cluster_remove sid -> (
      match t.on_cluster_change with
      | Some f ->
          let ok, epoch, msg = f (`Remove sid) in
          send t conn ~id
            (Wire.Cluster_ack { ack_ok = ok; ack_epoch = epoch; ack_msg = msg });
          `Continue
      | None ->
          send t conn ~id
            (Wire.Cluster_ack
               { ack_ok = false; ack_epoch = 0;
                 ack_msg = "shard runs without a cluster view" });
          `Continue)
  | Wire.Shutdown_req ->
      send t conn ~id Wire.Shutdown_ack;
      Atomic.set t.stop true;
      (* wake the accept fiber so the stop is noticed immediately *)
      (match t.accept_fiber with Some f -> Aio.cancel f | None -> ());
      `Close
  | Wire.Pong | Wire.Result _ | Wire.Stats_text _ | Wire.Metrics_text _
  | Wire.Shutdown_ack | Wire.Cache_ack _ | Wire.Stats_json _
  | Wire.Metrics_json _ | Wire.Members_text _ | Wire.Cluster_ack _
  | Wire.Members_json _ ->
      send t conn ~id
        (Wire.Result
           (Wire.R_error
              (Printf.sprintf "unexpected %s frame from a client"
                 (Wire.message_kind_name msg))));
      `Close

(* ------------------------------------------------------------------ *)
(* Connection fibers                                                   *)
(* ------------------------------------------------------------------ *)

let reader t conn =
  let cap =
    if t.cfg.max_source_bytes > 0 then t.cfg.max_source_bytes + 4096
    else Wire.hard_max_payload
  in
  let stream = Wire.Stream.create ~max_payload:cap () in
  (* one absolute deadline per frame, armed when its first byte arrives
     and dropped when the frame completes: idle connections carry no
     timer at all, and a sender trickling a header one byte a second
     runs out of road [read_timeout_s] after it started *)
  let frame_deadline = ref None in
  let update_deadline () =
    if Wire.Stream.midframe stream then begin
      if !frame_deadline = None && t.cfg.read_timeout_s > 0.0 then
        frame_deadline := Some (Aio.now () +. t.cfg.read_timeout_s)
    end
    else frame_deadline := None
  in
  let rec loop () =
    if conn.c_dead || Atomic.get t.draining then ()
    else
      match Wire.Stream.next stream with
      | `Frame (id, msg) -> (
          update_deadline ();
          match dispatch t conn ~id msg with
          | `Continue -> loop ()
          | `Close -> ())
      | `Oversized (id, got) ->
          (* drained in constant memory: reject typed, keep the stream *)
          update_deadline ();
          M.incr m_requests;
          M.incr m_too_large;
          send t conn ~id (Wire.Result (Wire.R_too_large { limit = cap; got }));
          loop ()
      | `Fail err ->
          (* a frame that does not decode leaves the stream position
             unknowable; answer typed and drop the connection *)
          M.incr m_bad_frames;
          send t conn ~id:0
            (Wire.Result (Wire.R_error (Wire.error_to_string err)))
      | `Need_more -> (
          update_deadline ();
          if Fault.fire t.fault Fault.Read_stall then
            Aio.sleep (Fault.delay_s t.fault);
          match
            Aio.read ?deadline:!frame_deadline conn.c_fd t.scratch 0
              (Bytes.length t.scratch)
          with
          | `Data n ->
              M.incr ~by:n m_bytes_read;
              Wire.Stream.feed stream t.scratch 0 n;
              loop ()
          | `Eof -> ()
          | `Deadline ->
              (* the frame deadline expired mid-request: the old
                 [Wire.Stalled] verdict, now an event-loop timer *)
              kill_conn conn)
  in
  (try loop () with _ -> ());
  (* no more requests will be admitted: the responder finishes the
     pending replies, then the writer flushes and the last fiber out
     closes the socket *)
  Aio.Mailbox.close conn.c_pending;
  conn_finished t conn

let responder t conn =
  let rec loop () =
    match Aio.Mailbox.take conn.c_pending with
    | None -> ()
    | Some p ->
        let outcome =
          match Aio.await p.pd_outcome with
          | `Value o -> o
          | `Deadline -> assert false (* no deadline on ticket waits *)
        in
        let reply = reply_of_outcome p.pd_trace outcome in
        send t conn ~id:p.pd_id (Wire.Result reply);
        release t;
        M.observe m_request_seconds (now () -. p.pd_start);
        if p.pd_trace <> 0 then
          Obs.Trace.with_trace_id p.pd_trace (fun () ->
              Obs.Trace.completed ~start_s:p.pd_start ~stop_s:(now ())
                ~attrs:[ ("request_id", string_of_int p.pd_id) ]
                "net_request");
        loop ()
  in
  (try loop () with _ -> ());
  Aio.Mailbox.close conn.c_out;
  conn_finished t conn

(* ------------------------------------------------------------------ *)
(* Accept fiber                                                        *)
(* ------------------------------------------------------------------ *)

let handle_accept t fd =
  if Atomic.get t.stop then (
    try Unix.close fd with Unix.Unix_error _ -> ())
  else begin
    Atomic.incr t.conns_seen;
    M.incr m_conns_total;
    if Fault.fire t.fault Fault.Accept_drop then (
      try Unix.close fd with Unix.Unix_error _ -> ())
    else if List.length t.conns >= t.cfg.max_conns then begin
      (* connection budget exhausted: one explicit Overloaded frame,
         then the door closes — nothing queues.  A small fiber writes
         the verdict so a slow receiver cannot stall the accept loop. *)
      Atomic.incr t.shed;
      M.incr m_shed;
      Unix.set_nonblock fd;
      ignore
        (Aio.spawn (fun () ->
             let s = Wire.encode ~id:0 (Wire.Result Wire.R_overloaded) in
             let b = Bytes.unsafe_of_string s in
             ignore
               (Aio.write_all
                  ~deadline:(Aio.now () +. 5.0)
                  fd b 0 (Bytes.length b));
             try Unix.close fd with Unix.Unix_error _ -> ()))
    end
    else begin
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      let conn =
        {
          c_fd = fd;
          c_pending = Aio.Mailbox.create ~capacity:(t.cfg.max_inflight + 4) ();
          c_out = Aio.Mailbox.create ();
          c_dead = false;
          c_alive = 3;
        }
      in
      t.conns <- conn :: t.conns;
      M.add_gauge m_conns_active 1.0;
      ignore (Aio.spawn (fun () -> writer t conn));
      ignore (Aio.spawn (fun () -> responder t conn));
      ignore (Aio.spawn (fun () -> reader t conn))
    end
  end

let accept_loop t =
  try
    let rec loop () =
      if Atomic.get t.stop then ()
      else
        match Aio.accept t.listen_fd with
        | `Conn (fd, _addr) ->
            handle_accept t fd;
            loop ()
        | `Deadline -> loop ()
        | `Error _ -> Atomic.set t.stop true
    in
    loop ()
  with Aio.Cancelled -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(fault = Fault.none) ?on_cluster_change cfg svc =
  (* a peer that disappears mid-write must surface as EPIPE, not kill
     the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port) in
  (try Unix.bind listen_fd addr
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listen_fd 256;
  Unix.set_nonblock listen_fd;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  let t =
    {
      svc;
      cfg;
      fault;
      on_cluster_change;
      listen_fd;
      bound_port;
      sched = Aio.create ();
      stop = Atomic.make false;
      draining = Atomic.make false;
      inflight = Atomic.make 0;
      inflight_hw = Atomic.make 0;
      shed = Atomic.make 0;
      conns_seen = Atomic.make 0;
      scratch = Bytes.create 65536;
      conns = [];
      accept_fiber = None;
      loop_thread = None;
    }
  in
  t.loop_thread <-
    Some
      (Thread.create
         (fun () ->
           Aio.run t.sched (fun () ->
               t.accept_fiber <- Some (Aio.self ());
               accept_loop t))
         ());
  t

let port t = t.bound_port

let request_stop t =
  Atomic.set t.stop true;
  (* wake the accept fiber; posting is safe from any thread and a no-op
     once the loop has already finished *)
  Aio.post t.sched (fun () ->
      match t.accept_fiber with
      | Some f -> Aio.cancel_on t.sched f
      | None -> ())

let stop_requested t = Atomic.get t.stop

let wait_stop t =
  while not (Atomic.get t.stop) do
    Thread.delay 0.05
  done

let drain t =
  if not (Atomic.exchange t.draining true) then begin
    request_stop t;
    (* on the loop thread (so it cannot race handle_accept): stop the
       readers — no new requests — but keep the writers, so in-flight
       requests finish and their replies flush before the loop drains *)
    Aio.post t.sched (fun () ->
        List.iter
          (fun c ->
            try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE
            with Unix.Unix_error _ -> ())
          t.conns);
    (match t.loop_thread with
    | Some th ->
        Thread.join th;
        t.loop_thread <- None
    | None -> ());
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end

let connections_seen t = Atomic.get t.conns_seen
let inflight_high_water t = Atomic.get t.inflight_hw
let shed_total t = Atomic.get t.shed
