(** Minimal HTTP/1.0 scrape endpoint: every GET (any path) answers
    [200 OK] with the text produced by the [dump] thunk — intended to
    serve {!Obs.Metrics.dump} to a Prometheus scraper or [curl].  One
    request per connection, 2 s read / 5 s write deadlines. *)

type t

val start : ?host:string -> port:int -> (unit -> string) -> t
(** Bind (default host 127.0.0.1; [port = 0] picks an ephemeral one)
    and serve in a background thread.
    @raise Unix.Unix_error when the address cannot be bound. *)

val port : t -> int
(** The actually-bound port. *)

val stop : t -> unit
(** Stop accepting, join the thread, close the socket.  Idempotent. *)
