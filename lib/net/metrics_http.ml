(* Minimal HTTP/1.0 endpoint for the Prometheus text dump.  One accept
   thread, one short-lived connection per scrape: read the request head,
   answer with the dump, close.  Deliberately not a web server — just
   enough HTTP for `curl` and a Prometheus scraper. *)

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  mutable thread : Thread.t option;
}

let http_response body =
  Printf.sprintf
    "HTTP/1.0 200 OK\r\n\
     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    (String.length body) body

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let w = Unix.write fd b !off (n - !off) in
    if w <= 0 then raise Exit;
    off := !off + w
  done

(* Read until the blank line ending the request head (or 4 KiB, or the
   read deadline) — the request itself is ignored: every path serves the
   dump. *)
let drain_request fd =
  let buf = Bytes.create 512 in
  let seen = Buffer.create 256 in
  let rec go () =
    if Buffer.length seen < 4096 then
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes seen buf 0 n;
          let s = Buffer.contents seen in
          if
            not
              (String.length s >= 4
              &&
              let rec has i =
                i + 4 <= String.length s
                && (String.sub s i 4 = "\r\n\r\n" || has (i + 1))
              in
              has 0)
          then go ()
      | exception Unix.Unix_error _ -> ()
  in
  go ()

let serve_one fd dump =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0
   with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
   with Unix.Unix_error _ -> ());
  (try
     drain_request fd;
     write_all fd (http_response (dump ()))
   with Exit | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t dump =
  while not (Atomic.get t.stop) do
    match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> Atomic.set t.stop true
    | ready, _, _ ->
        if List.mem t.wake_r ready then ()
        else if List.mem t.listen_fd ready then begin
          match Unix.accept t.listen_fd with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (_, _, _) -> Atomic.set t.stop true
          | fd, _ -> serve_one fd dump
        end
  done

let start ?(host = "127.0.0.1") ~port dump =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listen_fd 16;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let wake_r, wake_w = Unix.pipe () in
  let t =
    { listen_fd; bound_port; wake_r; wake_w; stop = Atomic.make false;
      thread = None }
  in
  t.thread <- Some (Thread.create (fun () -> accept_loop t dump) ());
  t

let port t = t.bound_port

let stop t =
  if not (Atomic.exchange t.stop true) then begin
    (try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error _ -> ());
    (match t.thread with
    | Some th ->
        Thread.join th;
        t.thread <- None
    | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end
