(** cedarnet wire protocol: versioned, length-prefixed binary frames.

    Every frame is a fixed 20-byte header followed by a payload:

    {v
    offset  size  field
    0       4     magic "CDRN"
    4       1     protocol version (1–4; see {!version_for_kind})
    5       1     message kind
    6       2     flags (reserved, 0) — big-endian
    8       8     request id          — big-endian
    16      4     payload length      — big-endian
    20      n     payload
    v}

    Request ids are chosen by the requester and echoed verbatim on the
    reply, so a pipelined connection can match responses to requests.
    All multi-byte integers are big-endian; OCaml ints ride as 8-byte
    two's-complement fields, floats as IEEE-754 bits, strings as a
    4-byte length followed by the bytes.

    The decoder is total: any byte string either decodes to a frame or
    to a typed {!error} — it never raises.  A {!Submit} carries the full
    {!Restructurer.Options.t} (technique set, machine configuration,
    limits) field by field, so a restructure requested over the wire is
    byte-identical to one run in process.  A Submit for the default
    Cedar codegen target travels as the original v1 kind-3 frame; a
    Submit for any other target uses the v4 kind 24, which appends a
    target byte ({!Codegen.Target.code}) after the v1 fields. *)

val magic : string
(** ["CDRN"], the 4 frame magic bytes. *)

val version : int
(** Newest protocol version this peer speaks (4). *)

val min_version : int
(** Oldest protocol version this peer still accepts (1). *)

val version_for_kind : int -> int
(** The version byte stamped on frames of a given kind.  Kinds from the
    original protocol keep version 1 — a v4 peer stays fully
    interoperable with a v1 peer for everything v1 could say — while the
    cluster kinds (11–18) are stamped 2, the dynamic-membership kinds
    (19–23) are stamped 3 and the targeted-submit kind (24) is stamped
    4, so an old decoder rejects exactly those with a typed
    {!Bad_version} instead of misparsing them. *)

val header_bytes : int
(** Fixed header size: 20. *)

val hard_max_payload : int
(** Absolute payload-length ceiling (64 MiB); a header announcing more
    is a {!Length_overflow} and the stream cannot be resynchronized. *)

type error =
  | Bad_magic  (** first 4 bytes are not {!magic} *)
  | Bad_version of int  (** well-formed frame, unknown version *)
  | Bad_kind of int  (** well-formed frame, unknown message kind *)
  | Truncated  (** ran out of bytes mid-header or mid-payload *)
  | Length_overflow of int  (** announced payload exceeds {!hard_max_payload} *)
  | Malformed of string  (** payload bytes do not decode as the kind *)

val error_to_string : error -> string

(** One restructured loop's verdict, riding the reply so the client
    sees what the restructurer decided without reparsing anything. *)
type note = {
  n_unit : string;  (** program unit name *)
  n_index : string;  (** loop index variable *)
  n_depth : int;
  n_decision : string;  (** e.g. "parallelized", "serial (blocked)" *)
  n_techniques : string list;  (** techniques that contributed *)
}

type submit = {
  sub_name : string;  (** label for reporting *)
  sub_source : string;  (** fortran77 source text *)
  sub_options : Restructurer.Options.t;
  sub_trace : int;  (** caller's {!Obs.Trace} id; 0 = let the server mint *)
}

(** Warm-cache replication (protocol v2): a completed full-rung cache
    entry pushed from the shard that computed it to its ring successor,
    so a shard death loses at most one replica's worth of warm cache.
    Only full-rung results are ever cached, so the rung is implicit. *)
type cache_push = {
  cp_key : string;  (** content address minted on the origin shard *)
  cp_digest : string;  (** digest of [cp_text] at fill time; the
                           receiver re-digests and rejects a mismatch *)
  cp_name : string;
  cp_text : string;
  cp_cycles : float option;
  cp_global_words : float option;
  cp_notes : note list;
}

(** Dynamic membership (protocol v3): an operator-initiated change to a
    running proxy's member set. *)
type cluster_add = {
  ca_id : string;  (** shard id to join the ring under *)
  ca_host : string;
  ca_port : int;
}

(** Reply to a {!Cluster_add} / [Cluster_remove]: whether the change
    was applied, and the ring epoch it produced (the epoch in force at
    rejection time when [ack_ok] is false). *)
type cluster_ack = { ack_ok : bool; ack_epoch : int; ack_msg : string }

(** Reply to a {!Submit} (and the body of every error reply). *)
type reply =
  | R_done of {
      r_cached : bool;
      r_rung : Service.Server.rung;  (** degradation rung that produced it *)
      r_text : string;  (** the restructured Cedar Fortran *)
      r_cycles : float option;
      r_global_words : float option;
      r_notes : note list;
      r_trace : int;  (** the job's end-to-end trace id; 0 = untraced *)
    }
  | R_failed of string
  | R_timeout
  | R_cancelled
  | R_overloaded
      (** shed: the connection or in-flight budget was exhausted; retry
          later against a less busy server *)
  | R_too_large of { limit : int; got : int }
      (** request hygiene: the submitted source exceeded the server's
          cap and was rejected before parsing *)
  | R_error of string  (** protocol-level failure (bad frame, bad kind) *)

type message =
  | Ping
  | Pong
  | Submit of submit
  | Result of reply
  | Stats_req
  | Stats_text of string  (** human-readable {!Service.Stats} summary *)
  | Metrics_req
  | Metrics_text of string  (** Prometheus text dump *)
  | Shutdown_req
  | Shutdown_ack
  (* protocol v2 (cluster) *)
  | Cache_push of cache_push
  | Cache_ack of bool  (** [true] iff the receiver admitted the entry *)
  | Stats_json_req
  | Stats_json of string  (** machine-readable {!Service.Stats} *)
  | Metrics_json_req
  | Metrics_json of string  (** JSON metrics dump *)
  | Members_req
  | Members_text of string  (** cluster membership as JSON (proxy only) *)
  (* protocol v3 (dynamic membership) *)
  | Cluster_add of cluster_add
  | Cluster_remove of string  (** shard id to take out of the ring *)
  | Cluster_ack of cluster_ack
  | Members_json_req
  | Members_json of string
      (** enriched membership view: ring epoch, vnode count, per-shard
          state and replica admission counters (proxy only) *)

val message_kind_name : message -> string

val note_of_report : Restructurer.Driver.loop_report -> note
(** The wire-visible subset of a driver loop report. *)

val report_of_note : note -> Restructurer.Driver.loop_report
(** Rebuild a loop report from a wire note; the fields that never
    crossed the wire (mode, blockers, version count) come back empty. *)

val encode : id:int -> message -> string
(** The complete frame (header + payload) for [message]. *)

val decode : string -> (int * message, error) result
(** Decode one complete frame; the [int] is the request id.  Total:
    never raises.  Trailing bytes beyond the announced payload length
    are a {!Malformed} error. *)

(* ------------------------------------------------------------------ *)
(* Stream IO                                                           *)
(* ------------------------------------------------------------------ *)

type read_result =
  | Frame of int * message
  | Oversized of int * int
      (** (request id, announced payload length): the payload exceeded
          the reader's cap and was drained from the stream in constant
          memory — the connection stays synchronized and the caller can
          send a typed rejection *)
  | Idle
      (** the read deadline expired with {e zero} bytes consumed: no
          request is in flight, the connection is merely quiet *)
  | Stalled
      (** the read deadline expired {e mid-frame}: the request is
          abandoned and the connection should be dropped *)
  | Eof
  | Fail of error

val read_frame : ?max_payload:int -> Unix.file_descr -> read_result
(** Read one frame.  [max_payload] (default {!hard_max_payload}) is the
    reader's soft cap; a larger announced payload is drained and
    reported {!Oversized}.  Read deadlines are the descriptor's
    [SO_RCVTIMEO].  Never raises: IO errors map to {!Eof}. *)

(** Incremental frame decoder for non-blocking readers.

    [read_frame] above owns its descriptor and expresses read deadlines
    through [SO_RCVTIMEO] — which does nothing on a non-blocking
    descriptor, so its mid-frame [Stalled] verdict cannot exist in an
    event-loop server.  [Stream] splits the concern: the event loop
    reads whatever bytes are ready and [feed]s them in, [next] yields
    complete frames, and {!Stream.midframe} tells the loop whether the
    peer is mid-request — the condition under which the loop arms a
    per-frame deadline (the replacement for [Stalled]).  A quiet
    connection with no partial frame needs no deadline at all, which is
    what lets thousands of idle connections cost nothing.

    Decode failures are sticky: once a frame fails to parse the stream
    position is unknowable and every subsequent [next] returns the same
    [`Fail]. *)
module Stream : sig
  type t

  val create : ?max_payload:int -> unit -> t
  (** [max_payload] is the soft cap (default {!hard_max_payload}): a
      larger announced payload is consumed in constant memory and
      reported [`Oversized] with the stream still synchronized. *)

  val feed : t -> bytes -> int -> int -> unit
  (** [feed t buf off len] appends bytes as they arrive off the wire. *)

  val next :
    t ->
    [ `Frame of int * message
    | `Oversized of int * int
    | `Need_more
    | `Fail of error ]
  (** The next complete frame, if the fed bytes contain one.
      [`Oversized (id, announced)] mirrors {!read_result.Oversized}. *)

  val midframe : t -> bool
  (** At least one byte of an incomplete frame is buffered. *)

  val buffered : t -> int
  (** Bytes fed and not yet consumed. *)
end

val write_frame : Unix.file_descr -> id:int -> message -> unit
(** Write one frame, looping over partial writes.
    @raise Unix.Unix_error when the peer is gone. *)

val write_raw : Unix.file_descr -> string -> unit
(** Write arbitrary bytes (chaos injection: truncated or garbage
    frames).  @raise Unix.Unix_error *)
