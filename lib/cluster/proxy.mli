(** The cluster balancer: a cedarnet server whose backend is other
    cedarnet servers.

    Speaks {!Net.Wire} on both sides.  Clients connect exactly as they
    would to a single cedard; each [Submit] is content-addressed with
    the same canonical key the shards use ({!Service.Server.cache_key})
    and routed to the key's ring owner, so the same program always
    lands on the same shard — and therefore in the same warm cache.
    Requests pipeline: each admitted submit is relayed on its own
    thread through a per-shard connection pool.

    Failure handling, in order of preference: a shard that answers
    typed (even [R_overloaded]) is believed; a transport failure demotes
    the shard in {!Membership} and the request retries on the ring
    successor (safe — submits are idempotent by content-addressed key);
    when every candidate is unreachable or saturated the proxy sheds
    with the protocol's existing [R_overloaded].

    The proxy also serves cluster-wide observability: [Stats_req] /
    [Stats_json_req] aggregate every live shard's snapshot,
    [Members_req] reports ring membership, [Metrics_req] dumps the
    proxy's own registry. *)

type cfg = {
  host : string;
  port : int;  (** 0 = ephemeral *)
  max_conns : int;
  max_inflight : int;  (** across all client connections *)
  failover : int;  (** ring candidates tried per submit (owner included) *)
  read_timeout_s : float;  (** client-side quiet timeout *)
  shard_timeout_s : float;  (** per-shard connect and round-trip bound *)
}

val default_cfg : cfg
(** 127.0.0.1, ephemeral port, 64 conns, 256 in flight, failover 2,
    30 s reads, 60 s shard timeout. *)

type t

val create :
  ?cfg:cfg ->
  ?vnodes:int ->
  ?probe_ms:float ->
  ?down_after:int ->
  ?seed:int ->
  Membership.shard list ->
  t
(** Start the proxy over the given shards: builds the membership view
    (with its jittered probe loop), the per-shard pools, and the
    accept thread.  Ring parameters must match the shards' replicators
    ([vnodes], default 64). *)

val port : t -> int
(** The bound TCP port. *)

val membership : t -> Membership.t

val request_stop : t -> unit
(** Ask the proxy to stop (signal-handler safe). *)

val wait_stop : t -> unit
(** Block until {!request_stop} is called. *)

val drain : t -> unit
(** Stop accepting, finish in-flight relays, stop probing, close the
    pools.  Idempotent. *)

val routed_total : t -> int
(** Submits relayed to a shard (first attempt or failover). *)

val failover_total : t -> int
(** Submits that succeeded only on a non-first candidate. *)

val shed_total : t -> int
(** Requests answered [R_overloaded] by the proxy itself (budget
    exhausted or no live candidate). *)
