(** The cluster balancer: a cedarnet server whose backend is other
    cedarnet servers.

    Speaks {!Net.Wire} on both sides.  Clients connect exactly as they
    would to a single cedard; each [Submit] is content-addressed with
    the same canonical key the shards use ({!Service.Server.cache_key})
    and routed to the key's ring owner, so the same program always
    lands on the same shard — and therefore in the same warm cache.
    Requests pipeline: each admitted submit is relayed on its own
    thread through a per-shard connection pool.

    Failure handling, in order of preference: a shard that answers
    typed (even [R_overloaded]) is believed; a transport failure demotes
    the shard in {!Membership} and the request retries on the ring
    successor (safe — submits are idempotent by content-addressed key);
    when every candidate is unreachable or saturated the proxy sheds
    with the protocol's existing [R_overloaded].

    The proxy also serves cluster-wide observability: [Stats_req] /
    [Stats_json_req] aggregate every live shard's snapshot,
    [Members_req] reports ring membership, [Members_json_req] the
    enriched view (ring epoch, per-shard state and replication
    counters), [Metrics_req] dumps the proxy's own registry.

    {b Topology changes.}  [Cluster_add] / [Cluster_remove] frames
    (from [cedarctl cluster add/remove]) change the member set at
    runtime behind an epoch barrier: the proxy stops admitting new
    relays, drains the ones routed on the old ring, applies the
    membership mutation (bumping the ring epoch), and only then routes
    on the new ring — no request is ever relayed against a stale
    epoch ({!stale_routes_total} counts violations; it stays 0).  The
    applied change is then broadcast best-effort to the live shards so
    their replicators re-balance onto the new ring.

    {b Read-repair.}  A warm full-rung hit served by a shard that is
    not the key's current ring owner (failover, or ownership moved
    under a topology change) is pushed back to the owner off the
    critical path, so subsequent requests for the key land warm on the
    first candidate. *)

type cfg = {
  host : string;
  port : int;  (** 0 = ephemeral *)
  max_conns : int;
  max_inflight : int;  (** across all client connections *)
  failover : int;  (** ring candidates tried per submit (owner included) *)
  read_timeout_s : float;  (** client-side quiet timeout *)
  shard_timeout_s : float;  (** per-shard connect and round-trip bound *)
}

val default_cfg : cfg
(** 127.0.0.1, ephemeral port, 64 conns, 256 in flight, failover 2,
    30 s reads, 60 s shard timeout. *)

type t

val create :
  ?cfg:cfg ->
  ?vnodes:int ->
  ?probe_ms:float ->
  ?down_after:int ->
  ?seed:int ->
  Membership.shard list ->
  t
(** Start the proxy over the given shards: builds the membership view
    (with its jittered probe loop), the per-shard pools, and the
    accept thread.  Ring parameters must match the shards' replicators
    ([vnodes], default 64). *)

val port : t -> int
(** The bound TCP port. *)

val membership : t -> Membership.t

val request_stop : t -> unit
(** Ask the proxy to stop (signal-handler safe). *)

val wait_stop : t -> unit
(** Block until {!request_stop} is called. *)

val drain : t -> unit
(** Stop accepting, finish in-flight relays, stop probing, close the
    pools.  Idempotent. *)

val routed_total : t -> int
(** Submits relayed to a shard (first attempt or failover). *)

val failover_total : t -> int
(** Submits that succeeded only on a non-first candidate. *)

val shed_total : t -> int
(** Requests answered [R_overloaded] by the proxy itself (budget
    exhausted or no live candidate). *)

val epoch : t -> int
(** The membership view's current ring epoch. *)

val stale_routes_total : t -> int
(** Relays whose routing decision predated a topology change — the
    epoch barrier exists to keep this at 0. *)

val read_repair_total : t -> int
(** Misplaced warm hits pushed back to their current ring owner. *)

val topology_changes_total : t -> int
(** Membership changes applied (successful add/remove frames). *)
