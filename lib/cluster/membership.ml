type state = Up | Suspect | Down

let state_name = function Up -> "up" | Suspect -> "suspect" | Down -> "down"

type shard = { sh_id : string; sh_host : string; sh_port : int }

type tracked = {
  shard : shard;
  mutable st : state;
  mutable fails : int;  (* consecutive *)
}

type t = {
  vnodes : int;
  probe_s : float;
  down_after : int;
  timeout_s : float;
  seed : int;
  probe_loss : float;  (* injected probe-failure rate (tests) *)
  mutex : Mutex.t;
  mutable tracked : tracked list;
  mutable full_ring : Ring.t;  (* all current members: the all-down fallback *)
  mutable live_ring : Ring.t;
  mutable epoch : int;  (* bumps whenever routable membership changes *)
  mutable tick : int;  (* jitter draw counter *)
  mutable draws : int;  (* probe-loss draw counter *)
  mutable stopping : bool;
  mutable prober : Thread.t option;
}

module M = Obs.Metrics

let m_transitions =
  M.counter M.global ~help:"membership state transitions"
    "cluster_member_transitions_total"

let m_down =
  M.gauge M.global ~help:"shards currently marked down" "cluster_members_down"

let m_epoch =
  M.gauge M.global ~help:"current ring epoch" "cluster_ring_epoch"

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* splitmix64 finalizer, same family as Service.Fault and Net.Client *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float seed n =
  let bits = mix64 (Int64.of_int ((seed * 0x3779fb9) lxor n)) in
  Int64.to_float (Int64.shift_right_logical bits 11) /. 9007199254740992.0

(* must hold the lock.  The epoch advances iff the set of routable
   shards actually changed — a Suspect⇄Up oscillation leaves the ring
   alone and must not churn the epoch, while a Down transition, a
   resurrection, or an add/remove moves ownership and does. *)
let rebuild_ring t =
  let live =
    List.filter_map
      (fun tr -> if tr.st <> Down then Some tr.shard.sh_id else None)
      t.tracked
  in
  let next =
    if live = [] then t.full_ring else Ring.make ~vnodes:t.vnodes live
  in
  if Ring.members next <> Ring.members t.live_ring then begin
    t.epoch <- t.epoch + 1;
    M.set_gauge m_epoch (float_of_int t.epoch)
  end;
  t.live_ring <- next;
  M.set_gauge m_down
    (float_of_int
       (List.fold_left
          (fun n tr -> if tr.st = Down then n + 1 else n)
          0 t.tracked))

let apply_success t tr =
  with_lock t (fun () ->
      tr.fails <- 0;
      if tr.st <> Up then begin
        tr.st <- Up;
        M.incr m_transitions;
        rebuild_ring t
      end)

let apply_failure t tr =
  with_lock t (fun () ->
      tr.fails <- tr.fails + 1;
      let next = if tr.fails >= t.down_after then Down else Suspect in
      if tr.st <> next then begin
        tr.st <- next;
        M.incr m_transitions;
        if next = Down then rebuild_ring t
      end)

let find t id =
  with_lock t (fun () ->
      List.find_opt (fun tr -> tr.shard.sh_id = id) t.tracked)

let note_failure t id =
  match find t id with None -> () | Some tr -> apply_failure t tr

let note_success t id =
  match find t id with None -> () | Some tr -> apply_success t tr

(* One-shot ping: a single connection attempt with tight timeouts — the
   probe must never hang the loop behind a dead host.  [probe_loss]
   deterministically swallows a fraction of probes (seeded, distinct
   stream from the period jitter) so tests can flap a healthy shard
   without touching the network. *)
let probe_shard t tr =
  let lost =
    t.probe_loss > 0.0
    &&
    let n = with_lock t (fun () -> t.draws <- t.draws + 1; t.draws) in
    unit_float (t.seed lxor 0x10c4e55) n < t.probe_loss
  in
  if lost then apply_failure t tr
  else
    let cfg =
      {
        (Net.Client.default_cfg ~port:tr.shard.sh_port) with
        Net.Client.host = tr.shard.sh_host;
        connect_timeout_s = t.timeout_s;
        request_timeout_s = t.timeout_s;
        max_attempts = 1;
      }
    in
    match Net.Client.connect cfg with
    | Error _ -> apply_failure t tr
    | Ok c ->
        (match Net.Client.ping c with
        | Ok _ -> apply_success t tr
        | Error _ -> apply_failure t tr);
        Net.Client.close c

let probe_once t =
  let snapshot = with_lock t (fun () -> t.tracked) in
  List.iter (fun tr -> probe_shard t tr) snapshot

let probe_loop t =
  while not t.stopping do
    probe_once t;
    let n = with_lock t (fun () -> t.tick <- t.tick + 1; t.tick) in
    (* jitter the period ±50% so a proxy fleet never probes in phase *)
    let delay = t.probe_s *. (0.5 +. unit_float t.seed n) in
    (* sleep in small slices so stop is prompt *)
    let slices = max 1 (int_of_float (delay /. 0.05)) in
    let slice = delay /. float_of_int slices in
    let i = ref 0 in
    while (not t.stopping) && !i < slices do
      Thread.delay slice;
      incr i
    done
  done

let create ?(vnodes = 64) ?(probe_ms = 500.0) ?(down_after = 2)
    ?(timeout_s = 1.0) ?(seed = 0x5eed) ?(auto_probe = true)
    ?(probe_loss = 0.0) shards =
  let ids = List.map (fun s -> s.sh_id) shards in
  let full_ring = Ring.make ~vnodes ids in
  let t =
    {
      vnodes;
      probe_s = Float.max 0.01 (probe_ms /. 1000.0);
      down_after = max 1 down_after;
      timeout_s;
      seed;
      probe_loss;
      mutex = Mutex.create ();
      tracked = List.map (fun shard -> { shard; st = Up; fails = 0 }) shards;
      full_ring;
      live_ring = full_ring;
      epoch = 1;
      tick = 0;
      draws = 0;
      stopping = false;
      prober = None;
    }
  in
  M.set_gauge m_epoch 1.0;
  if auto_probe then t.prober <- Some (Thread.create probe_loop t);
  t

let ring t = with_lock t (fun () -> t.live_ring)
let epoch t = with_lock t (fun () -> t.epoch)
let ring_epoch t = with_lock t (fun () -> (t.live_ring, t.epoch))
let vnodes t = t.vnodes

(* Dynamic membership: the member set itself is mutable.  Both the full
   (fallback) ring and the live ring are rebuilt; a change that alters
   routable membership bumps the epoch via [rebuild_ring]. *)
let add_shard t shard =
  with_lock t (fun () ->
      if List.exists (fun tr -> tr.shard.sh_id = shard.sh_id) t.tracked then
        Error (Printf.sprintf "shard %S is already a member" shard.sh_id)
      else begin
        t.tracked <- t.tracked @ [ { shard; st = Up; fails = 0 } ];
        t.full_ring <-
          Ring.make ~vnodes:t.vnodes
            (List.map (fun tr -> tr.shard.sh_id) t.tracked);
        rebuild_ring t;
        Ok t.epoch
      end)

let remove_shard t id =
  with_lock t (fun () ->
      if not (List.exists (fun tr -> tr.shard.sh_id = id) t.tracked) then
        Error (Printf.sprintf "shard %S is not a member" id)
      else if List.length t.tracked <= 1 then
        Error "refusing to remove the last member"
      else begin
        t.tracked <- List.filter (fun tr -> tr.shard.sh_id <> id) t.tracked;
        t.full_ring <-
          Ring.make ~vnodes:t.vnodes
            (List.map (fun tr -> tr.shard.sh_id) t.tracked);
        rebuild_ring t;
        Ok t.epoch
      end)

let shard_of_id t id =
  match find t id with None -> None | Some tr -> Some tr.shard

let snapshot t =
  with_lock t (fun () ->
      List.map (fun tr -> (tr.shard, tr.st, tr.fails)) t.tracked)

let members_json t =
  let epoch, vnodes, rows =
    with_lock t (fun () ->
        ( t.epoch,
          t.vnodes,
          List.map (fun tr -> (tr.shard, tr.st, tr.fails)) t.tracked ))
  in
  let shards =
    List.map
      (fun ((s : shard), st, fails) ->
        Printf.sprintf
          "{\"id\":\"%s\",\"host\":\"%s\",\"port\":%d,\"state\":\"%s\",\"fails\":%d}"
          s.sh_id s.sh_host s.sh_port (state_name st) fails)
      rows
  in
  Printf.sprintf "{\"epoch\":%d,\"vnodes\":%d,\"shards\":[%s]}" epoch vnodes
    (String.concat "," shards)

let stop t =
  t.stopping <- true;
  match t.prober with
  | None -> ()
  | Some th ->
      t.prober <- None;
      Thread.join th
