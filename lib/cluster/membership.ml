type state = Up | Suspect | Down

let state_name = function Up -> "up" | Suspect -> "suspect" | Down -> "down"

type shard = { sh_id : string; sh_host : string; sh_port : int }

type tracked = {
  shard : shard;
  mutable st : state;
  mutable fails : int;  (* consecutive *)
}

type t = {
  vnodes : int;
  probe_s : float;
  down_after : int;
  timeout_s : float;
  seed : int;
  mutex : Mutex.t;
  tracked : tracked array;
  full_ring : Ring.t;  (* all static members: the all-down fallback *)
  mutable live_ring : Ring.t;
  mutable tick : int;  (* jitter draw counter *)
  mutable stopping : bool;
  mutable prober : Thread.t option;
}

module M = Obs.Metrics

let m_transitions =
  M.counter M.global ~help:"membership state transitions"
    "cluster_member_transitions_total"

let m_down =
  M.gauge M.global ~help:"shards currently marked down" "cluster_members_down"

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* splitmix64 finalizer, same family as Service.Fault and Net.Client *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float seed n =
  let bits = mix64 (Int64.of_int ((seed * 0x3779fb9) lxor n)) in
  Int64.to_float (Int64.shift_right_logical bits 11) /. 9007199254740992.0

(* must hold the lock *)
let rebuild_ring t =
  let live =
    Array.to_list t.tracked
    |> List.filter_map (fun tr ->
           if tr.st <> Down then Some tr.shard.sh_id else None)
  in
  t.live_ring <-
    (if live = [] then t.full_ring else Ring.make ~vnodes:t.vnodes live);
  M.set_gauge m_down
    (float_of_int
       (Array.fold_left
          (fun n tr -> if tr.st = Down then n + 1 else n)
          0 t.tracked))

let apply_success t tr =
  with_lock t (fun () ->
      tr.fails <- 0;
      if tr.st <> Up then begin
        tr.st <- Up;
        M.incr m_transitions;
        rebuild_ring t
      end)

let apply_failure t tr =
  with_lock t (fun () ->
      tr.fails <- tr.fails + 1;
      let next = if tr.fails >= t.down_after then Down else Suspect in
      if tr.st <> next then begin
        tr.st <- next;
        M.incr m_transitions;
        if next = Down then rebuild_ring t
      end)

let find t id =
  Array.to_list t.tracked |> List.find_opt (fun tr -> tr.shard.sh_id = id)

let note_failure t id =
  match find t id with None -> () | Some tr -> apply_failure t tr

let note_success t id =
  match find t id with None -> () | Some tr -> apply_success t tr

(* One-shot ping: a single connection attempt with tight timeouts — the
   probe must never hang the loop behind a dead host. *)
let probe_shard t tr =
  let cfg =
    {
      (Net.Client.default_cfg ~port:tr.shard.sh_port) with
      Net.Client.host = tr.shard.sh_host;
      connect_timeout_s = t.timeout_s;
      request_timeout_s = t.timeout_s;
      max_attempts = 1;
    }
  in
  match Net.Client.connect cfg with
  | Error _ -> apply_failure t tr
  | Ok c ->
      (match Net.Client.ping c with
      | Ok _ -> apply_success t tr
      | Error _ -> apply_failure t tr);
      Net.Client.close c

let probe_once t = Array.iter (fun tr -> probe_shard t tr) t.tracked

let probe_loop t =
  while not t.stopping do
    probe_once t;
    let n = with_lock t (fun () -> t.tick <- t.tick + 1; t.tick) in
    (* jitter the period ±50% so a proxy fleet never probes in phase *)
    let delay = t.probe_s *. (0.5 +. unit_float t.seed n) in
    (* sleep in small slices so stop is prompt *)
    let slices = max 1 (int_of_float (delay /. 0.05)) in
    let slice = delay /. float_of_int slices in
    let i = ref 0 in
    while (not t.stopping) && !i < slices do
      Thread.delay slice;
      incr i
    done
  done

let create ?(vnodes = 64) ?(probe_ms = 500.0) ?(down_after = 2)
    ?(timeout_s = 1.0) ?(seed = 0x5eed) ?(auto_probe = true) shards =
  let ids = List.map (fun s -> s.sh_id) shards in
  let full_ring = Ring.make ~vnodes ids in
  let t =
    {
      vnodes;
      probe_s = Float.max 0.01 (probe_ms /. 1000.0);
      down_after = max 1 down_after;
      timeout_s;
      seed;
      mutex = Mutex.create ();
      tracked =
        Array.of_list
          (List.map (fun shard -> { shard; st = Up; fails = 0 }) shards);
      full_ring;
      live_ring = full_ring;
      tick = 0;
      stopping = false;
      prober = None;
    }
  in
  if auto_probe then t.prober <- Some (Thread.create probe_loop t);
  t

let ring t = with_lock t (fun () -> t.live_ring)

let shard_of_id t id =
  match find t id with None -> None | Some tr -> Some tr.shard

let snapshot t =
  with_lock t (fun () ->
      Array.to_list t.tracked
      |> List.map (fun tr -> (tr.shard, tr.st, tr.fails)))

let members_json t =
  let shards =
    snapshot t
    |> List.map (fun (s, st, fails) ->
           Printf.sprintf
             "{\"id\":\"%s\",\"host\":\"%s\",\"port\":%d,\"state\":\"%s\",\"fails\":%d}"
             s.sh_id s.sh_host s.sh_port (state_name st) fails)
  in
  "{\"shards\":[" ^ String.concat "," shards ^ "]}"

let stop t =
  t.stopping <- true;
  match t.prober with
  | None -> ()
  | Some th ->
      t.prober <- None;
      Thread.join th
