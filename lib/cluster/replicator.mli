(** Shard-side warm-cache replication.

    Hangs off {!Service.Server.create}'s [on_cache_fill] hook: every
    fresh full-rung result is queued here and pushed — asynchronously,
    off the job's critical path — to the ring successor of its key, so
    the death of this shard loses at most one replica's worth of warm
    cache.  The ring is the static cluster ring (same ids, same vnodes
    as the proxy's), so origin and proxy agree on where a key's replica
    belongs without coordination.

    Pushes are fire-and-forget with a bounded queue: when the queue is
    full the entry is dropped and counted, never blocking the worker
    that computed the result.  The receiving shard re-verifies the
    checksum before admitting ({!Service.Server.admit_replica}). *)

type t

type counts = {
  pushed : int;  (** frames sent and acked (admitted or not) *)
  admitted : int;  (** acks that reported admission *)
  rejected : int;  (** acks that reported rejection *)
  dropped : int;  (** queue-full drops (never sent) *)
  errors : int;  (** transport failures (peer unreachable) *)
}

val create :
  ?vnodes:int ->
  ?queue_capacity:int ->
  ?timeout_s:float ->
  self:string ->
  peers:Membership.shard list ->
  unit ->
  t
(** [peers] is the full static cluster (this shard included; it is
    skipped as a replica target).  [vnodes] (default 64) must match the
    proxy's.  [queue_capacity] (default 256) bounds the push backlog;
    [timeout_s] (default 5) bounds each push round trip. *)

val push :
  t -> key:string -> digest:string -> Service.Server.payload -> unit
(** Enqueue one entry for replication (non-blocking; drops + counts on
    a full queue).  Shaped to partially apply as the server's
    [on_cache_fill] hook. *)

val counts : t -> counts

val stop : t -> unit
(** Drain the queue, stop the sender thread, close the connections.
    Entries still queued are sent before it returns (peers permitting;
    unreachable peers just count as errors).  Idempotent. *)
