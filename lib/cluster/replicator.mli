(** Shard-side warm-cache replication with a configurable factor.

    Hangs off {!Service.Server.create}'s [on_cache_fill] hook: every
    fresh full-rung result is queued here and pushed — asynchronously,
    off the job's critical path — to the first [replicas - 1] distinct
    ring successors of its key, so under replication factor R a single
    shard death cools no key.  The ring is the cluster ring (same ids,
    same vnodes as the proxy's), so origin and proxy agree on where a
    key's replicas belong without coordination.

    Pushes are fire-and-forget with a bounded queue: when the queue is
    full the entry is dropped and counted, never blocking the worker
    that computed the result.  The receiving shard re-verifies the
    checksum before admitting ({!Service.Server.admit_replica}).

    {b Target health.}  A target that keeps eating transport errors is
    held down and skipped (counted in [skipped_down]) until a short
    cooldown expires, so pushes aimed at a dead shard stop burning pool
    connections.

    {b Topology changes.}  {!set_members} swaps the ring and the pools
    for a new member set; then — when {!set_gc} has wired a collector —
    drops the replica-flagged entries this shard no longer backs, and —
    when {!set_export} has wired a cache exporter — re-queues every
    resident entry once, so replica placement converges to the new ring
    without recomputation. *)

type t

type counts = {
  pushed : int;  (** frames sent and acked (admitted or not) *)
  admitted : int;  (** acks that reported admission *)
  rejected : int;  (** acks that reported rejection *)
  dropped : int;  (** queue-full drops (never sent) *)
  errors : int;  (** transport failures (peer unreachable) *)
  skipped_down : int;  (** pushes skipped because the target was held down *)
}

val create :
  ?vnodes:int ->
  ?queue_capacity:int ->
  ?timeout_s:float ->
  ?replicas:int ->
  self:string ->
  peers:Membership.shard list ->
  unit ->
  t
(** [peers] is the full cluster (this shard included; it is skipped as
    a replica target).  [vnodes] (default 64) must match the proxy's.
    [queue_capacity] (default 256) bounds the push backlog; [timeout_s]
    (default 5) bounds each push round trip.  [replicas] (default 2) is
    the {e total} number of copies of a key, the primary included —
    each fill is pushed to the key's first [replicas - 1] distinct ring
    successors; [replicas = 1] disables replication. *)

val push :
  t -> key:string -> digest:string -> Service.Server.payload -> unit
(** Enqueue one entry for replication (non-blocking; drops + counts on
    a full queue).  Shaped to partially apply as the server's
    [on_cache_fill] hook. *)

val set_export :
  t -> (unit -> (string * string * Service.Server.payload) list) -> unit
(** Wire the cache exporter used for re-replication on topology change:
    it returns every resident entry as [(key, digest, payload)]
    (see {!Service.Server.export_cache}). *)

val set_gc : t -> (keep:(string -> bool) -> int) -> unit
(** Wire the replica garbage collector (usually
    [Service.Server.gc_replicas server]): on every {!set_members} it is
    called with [keep key] true iff this shard still backs [key] —
    owner or one of the first [replicas - 1] distinct successors —
    under the {e new} ring, so ex-successors drop the replica entries
    they no longer own. *)

val set_members : t -> Membership.shard list -> unit
(** Replace the member set: rebuild the ring, swap the connection
    pools, reset target health, and — when an exporter is wired —
    re-queue every resident cache entry once so placement converges to
    the new ring. *)

val replicas : t -> int
(** The configured replication factor (total copies). *)

val counts : t -> counts

val stop : t -> unit
(** Drain the queue, stop the sender thread, close the connections.
    Entries still queued are sent before it returns (peers permitting;
    unreachable peers just count as errors).  Idempotent. *)
