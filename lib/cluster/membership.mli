(** Cluster membership, shard health, and the ring epoch.

    The shard set is given at creation and is {e mutable} thereafter:
    {!add_shard} and {!remove_shard} change it at runtime (driven by
    [cedarctl cluster add/remove] through the proxy).  What this module
    tracks is which members are currently routable.  Health is probed
    with the protocol's own {!Net.Wire.Ping} on a seeded, jittered loop
    (so a fleet of proxies does not synchronize its probes), and
    demotions also arrive from the data path — the proxy reports a
    transport error on a routed request via {!note_failure}, which is
    faster than waiting for the next probe tick.

    States: [Up] (routable), [Suspect] (missed probes, still routable —
    the failover path covers it), [Down] (missed [down_after]
    consecutive probes, removed from the ring until a probe succeeds
    again).  Transitions are monotone per observation: one success
    resets to [Up], failures only ever demote.

    {b Ring epoch.}  A monotonically-increasing counter, starting at 1,
    bumped under the membership lock exactly when the set of routable
    shards changes (a Down transition, a resurrection, an add, a
    remove).  A Suspect⇄Up oscillation does not move ownership and does
    not bump it.  Routing decisions snapshot [(ring, epoch)] together
    ({!ring_epoch}), so a caller can tell whether a decision was made
    against topology that has since changed. *)

type state = Up | Suspect | Down

val state_name : state -> string

type shard = { sh_id : string; sh_host : string; sh_port : int }

type t

val create :
  ?vnodes:int ->
  ?probe_ms:float ->
  ?down_after:int ->
  ?timeout_s:float ->
  ?seed:int ->
  ?auto_probe:bool ->
  ?probe_loss:float ->
  shard list ->
  t
(** Start tracking the given shards (all initially [Up]).  [vnodes]
    (default 64) is per-shard ring weight; [probe_ms] (default 500)
    the mean probe period, jittered ±50% per tick; [down_after]
    (default 2) consecutive failures demote to [Down]; [timeout_s]
    (default 1) bounds each probe's connect and round trip; [seed]
    makes the jitter stream deterministic.  [auto_probe:false]
    (default [true]) suppresses the background thread — tests then
    drive probing synchronously with {!probe_once}.  [probe_loss]
    (default 0) deterministically fails that fraction of probes before
    they touch the network — the seeded flapping injector. *)

val ring : t -> Ring.t
(** The current routing ring: every shard not [Down].  Falls back to
    the full member ring when {e every} shard is down — routing into a
    dead shard yields a typed error, whereas routing into an empty
    ring could only shed. *)

val epoch : t -> int
(** The current ring epoch (≥ 1, monotone). *)

val ring_epoch : t -> Ring.t * int
(** Ring and epoch in one locked snapshot — the pair a routing decision
    should be made against. *)

val vnodes : t -> int
(** Virtual nodes per shard on the ring. *)

val add_shard : t -> shard -> (int, string) result
(** Add a member at runtime (initially [Up]).  Returns the new epoch,
    or an error when the id is already a member. *)

val remove_shard : t -> string -> (int, string) result
(** Remove a member at runtime.  Returns the new epoch, or an error
    when the id is unknown or is the last member. *)

val shard_of_id : t -> string -> shard option

val snapshot : t -> (shard * state * int) list
(** Every shard with its state and consecutive-failure count. *)

val note_failure : t -> string -> unit
(** Data-path demotion: a routed request hit a transport error on this
    shard id.  Counts like a failed probe. *)

val note_success : t -> string -> unit
(** Data-path promotion: the shard answered; resets it to [Up]. *)

val probe_once : t -> unit
(** One synchronous probe pass over every shard (ping, apply
    transitions).  The background loop calls exactly this. *)

val members_json : t -> string
(** Membership as JSON:
    [{"epoch":E,"vnodes":V,"shards":[{"id":...,"host":...,"port":...,
    "state":...,"fails":...},...]}] *)

val stop : t -> unit
(** Stop the probe thread (if any) and join it.  Idempotent. *)
