(** Cluster membership and shard health.

    The static shard set is given at creation; what this module tracks
    is which of them are currently routable.  Health is probed with the
    protocol's own {!Net.Wire.Ping} on a seeded, jittered loop (so a
    fleet of proxies does not synchronize its probes), and demotions
    also arrive from the data path — the proxy reports a transport
    error on a routed request via {!note_failure}, which is faster than
    waiting for the next probe tick.

    States: [Up] (routable), [Suspect] (missed probes, still routable —
    the failover path covers it), [Down] (missed [down_after]
    consecutive probes, removed from the ring until a probe succeeds
    again).  Transitions are monotone per observation: one success
    resets to [Up], failures only ever demote. *)

type state = Up | Suspect | Down

val state_name : state -> string

type shard = { sh_id : string; sh_host : string; sh_port : int }

type t

val create :
  ?vnodes:int ->
  ?probe_ms:float ->
  ?down_after:int ->
  ?timeout_s:float ->
  ?seed:int ->
  ?auto_probe:bool ->
  shard list ->
  t
(** Start tracking the given shards (all initially [Up]).  [vnodes]
    (default 64) is per-shard ring weight; [probe_ms] (default 500)
    the mean probe period, jittered ±50% per tick; [down_after]
    (default 2) consecutive failures demote to [Down]; [timeout_s]
    (default 1) bounds each probe's connect and round trip; [seed]
    makes the jitter stream deterministic.  [auto_probe:false]
    (default [true]) suppresses the background thread — tests then
    drive probing synchronously with {!probe_once}. *)

val ring : t -> Ring.t
(** The current routing ring: every shard not [Down].  Falls back to
    the full static ring when {e every} shard is down — routing into a
    dead shard yields a typed error, whereas routing into an empty
    ring could only shed. *)

val shard_of_id : t -> string -> shard option

val snapshot : t -> (shard * state * int) list
(** Every shard with its state and consecutive-failure count. *)

val note_failure : t -> string -> unit
(** Data-path demotion: a routed request hit a transport error on this
    shard id.  Counts like a failed probe. *)

val note_success : t -> string -> unit
(** Data-path promotion: the shard answered; resets it to [Up]. *)

val probe_once : t -> unit
(** One synchronous probe pass over every shard (ping, apply
    transitions).  The background loop calls exactly this. *)

val members_json : t -> string
(** Membership as JSON:
    [{"shards":[{"id":...,"host":...,"port":...,"state":...,"fails":...},...]}] *)

val stop : t -> unit
(** Stop the probe thread (if any) and join it.  Idempotent. *)
