(** A small pool of {!Net.Client} connections to one shard.

    The proxy runs one pool per shard; a request checks a connection
    out, does one round trip, and returns it.  A connection that saw a
    transport error is closed instead of returned, so the pool never
    recycles a socket in an unknown state.  Checkout never blocks: when
    the idle list is empty a fresh connection is dialed — the in-flight
    budget upstream bounds how many can exist at once. *)

type t

val create : ?max_idle:int -> Net.Client.cfg -> t
(** A pool dialing with [cfg]; at most [max_idle] (default 8) idle
    connections are retained, extras are closed on return. *)

val with_client : t -> (Net.Client.t -> ('a, string) result) -> ('a, string) result
(** Check a connection out (dialing if necessary), run [f], return it.
    [Error] from [f] closes the connection and is returned verbatim;
    an exception from [f] closes the connection and re-raises. *)

val idle_count : t -> int
(** Idle connections currently retained (observability). *)

val close_all : t -> unit
(** Close every idle connection.  In-flight ones are closed by their
    holders on return (the pool is marked closed). *)
