(* Thread structure mirrors Net.Server: one accept thread woken through
   a self-pipe, one reader thread per client connection.  Where the
   single-node server hands submits to the in-process service pool, the
   proxy hands each one to a relay thread that walks the ring
   candidates through the per-shard pools; replies are written back
   under the connection's write mutex, so pipelined requests interleave
   safely. *)

module M = Obs.Metrics

type cfg = {
  host : string;
  port : int;
  max_conns : int;
  max_inflight : int;
  failover : int;
  read_timeout_s : float;
  shard_timeout_s : float;
}

let default_cfg =
  {
    host = "127.0.0.1";
    port = 0;
    max_conns = 64;
    max_inflight = 256;
    failover = 2;
    read_timeout_s = 30.0;
    shard_timeout_s = 60.0;
  }

type conn = {
  c_fd : Unix.file_descr;
  c_wmutex : Mutex.t;
  c_alive : int Atomic.t;  (* reader + outstanding relay threads *)
  mutable c_dead : bool;
}

type t = {
  cfg : cfg;
  members : Membership.t;
  pools : (string * Pool.t) list;  (* by shard id *)
  listen_fd : Unix.file_descr;
  bound_port : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  draining : bool Atomic.t;
  inflight : int Atomic.t;
  routed : int Atomic.t;
  failovers : int Atomic.t;
  shed : int Atomic.t;
  route_counters : (string * M.counter) list;  (* per shard id *)
  conns_mutex : Mutex.t;
  mutable conns : conn list;
  mutable accept_thread : Thread.t option;
}

let m_failover =
  M.counter M.global ~help:"submits served by a ring successor after the owner failed"
    "cluster_failover_total"

let m_shed =
  M.counter M.global ~help:"requests shed by the proxy (budget or no live shard)"
    "cluster_proxy_shed_total"

let m_inflight =
  M.gauge M.global ~help:"submits in flight through the proxy"
    "cluster_proxy_inflight"

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let kill_conn conn =
  conn.c_dead <- true;
  try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let send conn ~id msg =
  with_lock conn.c_wmutex (fun () ->
      if not conn.c_dead then
        try Net.Wire.write_frame conn.c_fd ~id msg
        with Unix.Unix_error _ -> kill_conn conn)

(* ------------------------------------------------------------------ *)
(* Relaying                                                            *)
(* ------------------------------------------------------------------ *)

let pool_of t id = List.assoc_opt id t.pools

let route_counter t id =
  match List.assoc_opt id t.route_counters with
  | Some c -> Some c
  | None -> None

(* Walk the candidates.  A typed reply from a shard — any reply, even
   Overloaded from its admission control — proves the shard is alive;
   only R_overloaded among typed replies justifies trying the next
   candidate (the successor may have room).  A transport error demotes
   the shard and moves on. *)
let relay_submit t (s : Net.Wire.submit) =
  let key =
    Service.Server.cache_key
      {
        Service.Server.req_name = s.Net.Wire.sub_name;
        req_source = s.Net.Wire.sub_source;
        req_options = s.Net.Wire.sub_options;
      }
  in
  let candidates =
    Ring.route (Membership.ring t.members) key ~n:(max 1 t.cfg.failover)
  in
  let rec go i = function
    | [] ->
        Atomic.incr t.shed;
        M.incr m_shed;
        Net.Wire.R_overloaded
    | shard_id :: rest -> (
        let try_next () = go (i + 1) rest in
        match pool_of t shard_id with
        | None -> try_next ()
        | Some pool -> (
            match
              Pool.with_client pool (fun c ->
                  Net.Client.submit ~trace:s.Net.Wire.sub_trace c
                    ~name:s.Net.Wire.sub_name
                    ~options:s.Net.Wire.sub_options s.Net.Wire.sub_source)
            with
            | Ok reply -> (
                Membership.note_success t.members shard_id;
                match reply with
                | Net.Wire.R_overloaded when rest <> [] ->
                    (* saturated, not dead: spill to the successor *)
                    try_next ()
                | reply ->
                    Atomic.incr t.routed;
                    (match route_counter t shard_id with
                    | Some c -> M.incr c
                    | None -> ());
                    if i > 0 then begin
                      Atomic.incr t.failovers;
                      M.incr m_failover
                    end;
                    reply)
            | Error _ ->
                Membership.note_failure t.members shard_id;
                try_next ()))
  in
  go 0 candidates

(* Cache pushes addressed to the proxy are forwarded to the key's owner
   — lets tooling seed the cluster's warm cache through the front door. *)
let relay_cache_push t (p : Net.Wire.cache_push) =
  match Ring.lookup (Membership.ring t.members) p.Net.Wire.cp_key with
  | None -> false
  | Some shard_id -> (
      match pool_of t shard_id with
      | None -> false
      | Some pool -> (
          match Pool.with_client pool (fun c -> Net.Client.cache_push c p) with
          | Ok admitted -> admitted
          | Error _ ->
              Membership.note_failure t.members shard_id;
              false))

(* ------------------------------------------------------------------ *)
(* Cluster-wide observability                                          *)
(* ------------------------------------------------------------------ *)

(* per-shard fetch for the aggregated views; Down shards are reported
   as unreachable without being dialed *)
let fetch_from_shard t (shard : Membership.shard) st f =
  if st = Membership.Down then Error "down"
  else
    match pool_of t shard.Membership.sh_id with
    | None -> Error "unknown shard"
    | Some pool -> Pool.with_client pool f

let aggregated_stats_json t =
  let shards =
    Membership.snapshot t.members
    |> List.map (fun (shard, st, _) ->
           let body =
             match fetch_from_shard t shard st Net.Client.stats_json with
             | Ok json -> json
             | Error _ -> "null"
           in
           Printf.sprintf "\"%s\":%s" shard.Membership.sh_id body)
  in
  Printf.sprintf
    "{\"proxy\":{\"routed\":%d,\"failovers\":%d,\"shed\":%d,\"members\":%s},\"shards\":{%s}}"
    (Atomic.get t.routed) (Atomic.get t.failovers) (Atomic.get t.shed)
    (Membership.members_json t.members)
    (String.concat "," shards)

let aggregated_stats_text t =
  let header =
    Printf.sprintf "cluster     routed %d  failovers %d  shed %d"
      (Atomic.get t.routed) (Atomic.get t.failovers) (Atomic.get t.shed)
  in
  let sections =
    Membership.snapshot t.members
    |> List.map (fun (shard, st, fails) ->
           let title =
             Printf.sprintf "--- shard %s (%s:%d) %s, %d consecutive fails ---"
               shard.Membership.sh_id shard.Membership.sh_host
               shard.Membership.sh_port (Membership.state_name st) fails
           in
           let body =
             match fetch_from_shard t shard st Net.Client.stats with
             | Ok text -> text
             | Error msg -> "unreachable: " ^ msg
           in
           title ^ "\n" ^ body)
  in
  String.concat "\n" (header :: sections)

(* ------------------------------------------------------------------ *)
(* Per-connection reader                                               *)
(* ------------------------------------------------------------------ *)

let thread_finished t conn =
  if Atomic.fetch_and_add conn.c_alive (-1) = 1 then begin
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    with_lock t.conns_mutex (fun () ->
        t.conns <- List.filter (fun c -> not (c == conn)) t.conns)
  end

let rec try_reserve t =
  let cur = Atomic.get t.inflight in
  if cur >= t.cfg.max_inflight then false
  else if Atomic.compare_and_set t.inflight cur (cur + 1) then begin
    M.set_gauge m_inflight (float_of_int (cur + 1));
    true
  end
  else try_reserve t

let release t =
  Atomic.decr t.inflight;
  M.set_gauge m_inflight (float_of_int (Atomic.get t.inflight))

let spawn_relay t conn ~id work =
  Atomic.incr conn.c_alive;
  ignore
    (Thread.create
       (fun () ->
         (try
            let reply = work () in
            send conn ~id reply
          with _ -> ());
         release t;
         thread_finished t conn)
       ())

let dispatch t conn ~id msg =
  match msg with
  | Net.Wire.Ping ->
      send conn ~id Net.Wire.Pong;
      `Continue
  | Net.Wire.Submit s ->
      if not (try_reserve t) then begin
        Atomic.incr t.shed;
        M.incr m_shed;
        send conn ~id (Net.Wire.Result Net.Wire.R_overloaded)
      end
      else
        spawn_relay t conn ~id (fun () ->
            Net.Wire.Result (relay_submit t s));
      `Continue
  | Net.Wire.Cache_push p ->
      if not (try_reserve t) then begin
        Atomic.incr t.shed;
        M.incr m_shed;
        send conn ~id (Net.Wire.Cache_ack false)
      end
      else
        spawn_relay t conn ~id (fun () ->
            Net.Wire.Cache_ack (relay_cache_push t p));
      `Continue
  | Net.Wire.Stats_req ->
      send conn ~id (Net.Wire.Stats_text (aggregated_stats_text t));
      `Continue
  | Net.Wire.Stats_json_req ->
      send conn ~id (Net.Wire.Stats_json (aggregated_stats_json t));
      `Continue
  | Net.Wire.Metrics_req ->
      send conn ~id (Net.Wire.Metrics_text (M.dump M.global));
      `Continue
  | Net.Wire.Metrics_json_req ->
      send conn ~id (Net.Wire.Metrics_json (M.to_json M.global));
      `Continue
  | Net.Wire.Members_req ->
      send conn ~id (Net.Wire.Members_text (Membership.members_json t.members));
      `Continue
  | Net.Wire.Shutdown_req ->
      (* stops the proxy only; shards are shut down by their own owners *)
      send conn ~id Net.Wire.Shutdown_ack;
      Atomic.set t.stop true;
      (try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
       with Unix.Unix_error _ -> ());
      `Close
  | Net.Wire.Pong | Net.Wire.Result _ | Net.Wire.Stats_text _
  | Net.Wire.Metrics_text _ | Net.Wire.Shutdown_ack | Net.Wire.Cache_ack _
  | Net.Wire.Stats_json _ | Net.Wire.Metrics_json _ | Net.Wire.Members_text _
    ->
      send conn ~id
        (Net.Wire.Result
           (Net.Wire.R_error
              (Printf.sprintf "unexpected %s frame from a client"
                 (Net.Wire.message_kind_name msg))));
      `Close

let reader t conn =
  let rec loop () =
    if conn.c_dead || Atomic.get t.draining then ()
    else
      match Net.Wire.read_frame conn.c_fd with
      | Net.Wire.Idle -> loop ()
      | Net.Wire.Frame (id, msg) -> (
          match dispatch t conn ~id msg with
          | `Continue -> loop ()
          | `Close -> ())
      | Net.Wire.Oversized (id, got) ->
          send conn ~id
            (Net.Wire.Result
               (Net.Wire.R_too_large
                  { limit = Net.Wire.hard_max_payload; got }));
          loop ()
      | Net.Wire.Stalled -> kill_conn conn
      | Net.Wire.Eof -> ()
      | Net.Wire.Fail err ->
          send conn ~id:0
            (Net.Wire.Result
               (Net.Wire.R_error (Net.Wire.error_to_string err)))
  in
  (try loop () with _ -> ());
  thread_finished t conn

(* ------------------------------------------------------------------ *)
(* Accept loop / lifecycle                                             *)
(* ------------------------------------------------------------------ *)

let handle_accept t fd =
  let active = with_lock t.conns_mutex (fun () -> List.length t.conns) in
  if active >= t.cfg.max_conns then begin
    Atomic.incr t.shed;
    M.incr m_shed;
    (try Net.Wire.write_frame fd ~id:0 (Net.Wire.Result Net.Wire.R_overloaded)
     with Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    if t.cfg.read_timeout_s > 0.0 then
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.cfg.read_timeout_s
       with Unix.Unix_error _ -> ());
    let conn =
      {
        c_fd = fd;
        c_wmutex = Mutex.create ();
        c_alive = Atomic.make 1;
        c_dead = false;
      }
    in
    with_lock t.conns_mutex (fun () -> t.conns <- conn :: t.conns);
    ignore (Thread.create (fun () -> reader t conn) ())
  end

let accept_loop t =
  while not (Atomic.get t.stop) do
    match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> Atomic.set t.stop true
    | ready, _, _ ->
        if List.mem t.wake_r ready then ()
        else if List.mem t.listen_fd ready then begin
          match Unix.accept t.listen_fd with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (_, _, _) -> Atomic.set t.stop true
          | fd, _addr -> handle_accept t fd
        end
  done

let create ?(cfg = default_cfg) ?(vnodes = 64) ?(probe_ms = 500.0)
    ?(down_after = 2) ?(seed = 0x5eed) shards =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let members =
    Membership.create ~vnodes ~probe_ms ~down_after
      ~timeout_s:(Float.min 1.0 cfg.shard_timeout_s) ~seed shards
  in
  let pools =
    List.map
      (fun (s : Membership.shard) ->
        let ccfg =
          {
            (Net.Client.default_cfg ~port:s.Membership.sh_port) with
            Net.Client.host = s.Membership.sh_host;
            connect_timeout_s = Float.min 5.0 cfg.shard_timeout_s;
            request_timeout_s = cfg.shard_timeout_s;
            max_attempts = 2;
          }
        in
        (s.Membership.sh_id, Pool.create ccfg))
      shards
  in
  let route_counters =
    List.map
      (fun (s : Membership.shard) ->
        ( s.Membership.sh_id,
          M.counter M.global ~help:"submits routed to this shard"
            (Printf.sprintf "cluster_route_%s_total" s.Membership.sh_id) ))
      shards
  in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port) in
  (try Unix.bind listen_fd addr
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     Membership.stop members;
     raise e);
  Unix.listen listen_fd 64;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      cfg;
      members;
      pools;
      listen_fd;
      bound_port;
      wake_r;
      wake_w;
      stop = Atomic.make false;
      draining = Atomic.make false;
      inflight = Atomic.make 0;
      routed = Atomic.make 0;
      failovers = Atomic.make 0;
      shed = Atomic.make 0;
      route_counters;
      conns_mutex = Mutex.create ();
      conns = [];
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let port t = t.bound_port
let membership t = t.members

let request_stop t =
  Atomic.set t.stop true;
  try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
  with Unix.Unix_error _ -> ()

let wait_stop t =
  while not (Atomic.get t.stop) do
    Thread.delay 0.05
  done

let drain t =
  if not (Atomic.exchange t.draining true) then begin
    request_stop t;
    (match t.accept_thread with
    | Some th ->
        Thread.join th;
        t.accept_thread <- None
    | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    (* stop the readers; relay threads finish their shard round trips
       and write their replies before the connection closes *)
    let conns = with_lock t.conns_mutex (fun () -> t.conns) in
    List.iter
      (fun c ->
        try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE
        with Unix.Unix_error _ -> ())
      conns;
    (* wait for the per-connection threads to drain *)
    let rec settle tries =
      let left = with_lock t.conns_mutex (fun () -> List.length t.conns) in
      if left > 0 && tries > 0 then begin
        Thread.delay 0.02;
        settle (tries - 1)
      end
    in
    settle 500;
    Membership.stop t.members;
    List.iter (fun (_, p) -> Pool.close_all p) t.pools
  end

let routed_total t = Atomic.get t.routed
let failover_total t = Atomic.get t.failovers
let shed_total t = Atomic.get t.shed
