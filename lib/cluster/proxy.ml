(* The proxy rides the same Aio fiber scheduler as Net.Server: one
   event-loop thread runs an accept fiber plus, per client connection,
   a reader fiber (Wire.Stream decode, per-frame deadlines) and a
   writer fiber (the single producer on the socket, so pipelined
   replies never interleave — the old per-connection write mutex is now
   a mailbox).  Each admitted submit gets a relay *fiber*, not a relay
   thread: the blocking shard round trip (Pool / Net.Client are
   synchronous) runs on a small fixed executor pool, fulfils a promise,
   and the relay fiber suspends in [Aio.await] until the reply comes
   back through the scheduler's completion queue.  A thousand clients
   cost a thousand fibers and one poll set; the thread count is fixed at
   the executor width however many requests are in flight. *)

module M = Obs.Metrics

type cfg = {
  host : string;
  port : int;
  max_conns : int;
  max_inflight : int;
  failover : int;
  read_timeout_s : float;
  shard_timeout_s : float;
}

let default_cfg =
  {
    host = "127.0.0.1";
    port = 0;
    max_conns = 64;
    max_inflight = 256;
    failover = 2;
    read_timeout_s = 30.0;
    shard_timeout_s = 60.0;
  }

(* ------------------------------------------------------------------ *)
(* Relay executor: the fixed pool of threads that run the blocking
   shard round trips on behalf of relay fibers.  The queue is
   unbounded, but the proxy's in-flight budget already caps how many
   jobs can be outstanding, so it never grows past [max_inflight].     *)
(* ------------------------------------------------------------------ *)

module Exec = struct
  type t = {
    mu : Mutex.t;
    cv : Condition.t;
    jobs : (unit -> unit) Queue.t;
    mutable closed : bool;
    mutable workers : Thread.t list;
  }

  let worker e =
    let rec loop () =
      Mutex.lock e.mu;
      while Queue.is_empty e.jobs && not e.closed do
        Condition.wait e.cv e.mu
      done;
      if Queue.is_empty e.jobs then Mutex.unlock e.mu
      else begin
        let job = Queue.pop e.jobs in
        Mutex.unlock e.mu;
        (try job () with _ -> ());
        loop ()
      end
    in
    loop ()

  let create n =
    let e =
      {
        mu = Mutex.create ();
        cv = Condition.create ();
        jobs = Queue.create ();
        closed = false;
        workers = [];
      }
    in
    e.workers <- List.init (max 1 n) (fun _ -> Thread.create worker e);
    e

  let submit e job =
    Mutex.lock e.mu;
    if e.closed then begin
      Mutex.unlock e.mu;
      false
    end
    else begin
      Queue.push job e.jobs;
      Condition.signal e.cv;
      Mutex.unlock e.mu;
      true
    end

  let shutdown e =
    Mutex.lock e.mu;
    e.closed <- true;
    Condition.broadcast e.cv;
    Mutex.unlock e.mu;
    List.iter Thread.join e.workers;
    e.workers <- []
end

type conn = {
  c_fd : Unix.file_descr;
  c_out : string Aio.Mailbox.mb;  (* encoded frames for the writer *)
  mutable c_dead : bool;
  mutable c_alive : int;  (* reader + outstanding relay fibers *)
}

type t = {
  cfg : cfg;
  members : Membership.t;
  mutable pools : (string * Pool.t) list;  (* by shard id; topo_mu *)
  listen_fd : Unix.file_descr;
  bound_port : int;
  sched : Aio.t;
  exec : Exec.t;
  stop : bool Atomic.t;
  draining : bool Atomic.t;
  inflight : int Atomic.t;
  routed : int Atomic.t;
  failovers : int Atomic.t;
  shed : int Atomic.t;
  mutable route_counters : (string * M.counter) list;  (* topo_mu *)
  (* Topology barrier: a membership change drains in-flight relays
     against the old ring before the new one routes anything.  Relays
     enter with [relay_begin] (blocking while a change drains) and
     leave with [relay_end]; [change_topology] flips [topo_draining],
     waits for [active_relays] to hit zero, mutates, and releases. *)
  topo_mu : Mutex.t;
  topo_cv : Condition.t;
  mutable topo_draining : bool;
  mutable active_relays : int;
  topo_gen : int Atomic.t;  (* completed topology changes *)
  stale_routes : int Atomic.t;
  read_repairs : int Atomic.t;
  scratch : Bytes.t;
  mutable conns : conn list;  (* loop thread only *)
  mutable accept_fiber : Aio.fiber option;
  mutable loop_thread : Thread.t option;
}

let m_failover =
  M.counter M.global ~help:"submits served by a ring successor after the owner failed"
    "cluster_failover_total"

let m_shed =
  M.counter M.global ~help:"requests shed by the proxy (budget or no live shard)"
    "cluster_proxy_shed_total"

let m_inflight =
  M.gauge M.global ~help:"submits in flight through the proxy"
    "cluster_proxy_inflight"

let m_stale =
  M.counter M.global
    ~help:"relays whose routing decision predates a topology change"
    "cluster_proxy_stale_routes_total"

let m_read_repair =
  M.counter M.global
    ~help:"warm hits pushed back to the key's current ring owner"
    "cluster_read_repair_total"

let m_topo_changes =
  M.counter M.global ~help:"membership changes applied through the proxy"
    "cluster_topology_changes_total"

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let kill_conn conn =
  conn.c_dead <- true;
  try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let send conn ~id msg =
  if not conn.c_dead then
    ignore (Aio.Mailbox.put conn.c_out (Net.Wire.encode ~id msg))

let writer t conn =
  let rec loop () =
    match Aio.Mailbox.take conn.c_out with
    | None -> ()
    | Some s ->
        if not conn.c_dead then begin
          let b = Bytes.unsafe_of_string s in
          match
            Aio.write_all
              ~deadline:(Aio.now () +. 30.0)
              conn.c_fd b 0 (Bytes.length b)
          with
          | `Ok -> ()
          | `Deadline | `Closed -> kill_conn conn
        end;
        loop ()
  in
  loop ();
  (* the writer is the last fiber out: producers closed the mailbox *)
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> not (c == conn)) t.conns

(* reader and relay fibers are the producers on [c_out]; the last one
   to finish closes the mailbox, which lets the writer drain and close *)
let producer_finished conn =
  conn.c_alive <- conn.c_alive - 1;
  if conn.c_alive = 0 then Aio.Mailbox.close conn.c_out

(* ------------------------------------------------------------------ *)
(* Topology barrier                                                    *)
(* ------------------------------------------------------------------ *)

let relay_begin t =
  Mutex.lock t.topo_mu;
  while t.topo_draining do
    Condition.wait t.topo_cv t.topo_mu
  done;
  t.active_relays <- t.active_relays + 1;
  Mutex.unlock t.topo_mu

let relay_end t =
  Mutex.lock t.topo_mu;
  t.active_relays <- t.active_relays - 1;
  if t.active_relays = 0 then Condition.broadcast t.topo_cv;
  Mutex.unlock t.topo_mu

(* every executor job that touches the ring or the pools runs inside
   the barrier, so [change_topology] swaps both with nothing in flight *)
let with_relay_barrier t f =
  relay_begin t;
  Fun.protect ~finally:(fun () -> relay_end t) f

(* Serialize membership changes and drain relays routed on the old
   ring: waiters in [relay_begin] do not hold [active_relays], so the
   drain only waits on relays already past the barrier — bounded by
   the shard round-trip timeout.  [mutate] runs with the lock held and
   must touch [t.pools] / [t.route_counters] directly (never through
   [pool_of], the mutex is not reentrant). *)
let change_topology t mutate =
  Mutex.lock t.topo_mu;
  while t.topo_draining do
    Condition.wait t.topo_cv t.topo_mu
  done;
  t.topo_draining <- true;
  while t.active_relays > 0 do
    Condition.wait t.topo_cv t.topo_mu
  done;
  let finish () =
    t.topo_draining <- false;
    Condition.broadcast t.topo_cv;
    Mutex.unlock t.topo_mu
  in
  match mutate () with
  | Ok _ as result ->
      Atomic.incr t.topo_gen;
      M.incr m_topo_changes;
      finish ();
      result
  | Error _ as result ->
      finish ();
      result
  | exception e ->
      finish ();
      raise e

(* ------------------------------------------------------------------ *)
(* Relaying                                                            *)
(* ------------------------------------------------------------------ *)

let pool_of t id =
  Mutex.lock t.topo_mu;
  let p = List.assoc_opt id t.pools in
  Mutex.unlock t.topo_mu;
  p

let route_counter t id =
  Mutex.lock t.topo_mu;
  let c = List.assoc_opt id t.route_counters in
  Mutex.unlock t.topo_mu;
  c

(* Read-repair: a warm full-rung hit served by a shard that is not the
   key's current ring owner (failover landed it there, or ownership
   moved under a topology change) is pushed back to the owner —
   fire-and-forget on the executor — so the next request for the key
   routes straight into a warm cache. *)
let schedule_read_repair t ~name ~key ~served_by (reply : Net.Wire.reply) =
  match reply with
  | Net.Wire.R_done
      {
        r_cached = true;
        r_rung = Service.Server.Full;
        r_text;
        r_cycles;
        r_global_words;
        r_notes;
        _;
      } -> (
      match Ring.lookup (Membership.ring t.members) key with
      | Some owner when owner <> served_by ->
          let p =
            {
              Net.Wire.cp_key = key;
              cp_digest = Service.Cache.digest r_text;
              cp_name = name;
              cp_text = r_text;
              cp_cycles = r_cycles;
              cp_global_words = r_global_words;
              cp_notes = r_notes;
            }
          in
          ignore
            (Exec.submit t.exec (fun () ->
                 with_relay_barrier t (fun () ->
                     match pool_of t owner with
                     | None -> ()
                     | Some pool -> (
                         match
                           Pool.with_client pool (fun c ->
                               Net.Client.cache_push c p)
                         with
                         | Ok _ ->
                             Atomic.incr t.read_repairs;
                             M.incr m_read_repair
                         | Error _ ->
                             Membership.note_failure t.members owner))))
      | _ -> ())
  | _ -> ()

(* Walk the candidates.  A typed reply from a shard — any reply, even
   Overloaded from its admission control — proves the shard is alive;
   only R_overloaded among typed replies justifies trying the next
   candidate (the successor may have room).  A transport error demotes
   the shard and moves on. *)
let relay_submit t (s : Net.Wire.submit) =
  let key =
    Service.Server.cache_key
      {
        Service.Server.req_name = s.Net.Wire.sub_name;
        req_source = s.Net.Wire.sub_source;
        req_options = s.Net.Wire.sub_options;
      }
  in
  let ring, _epoch = Membership.ring_epoch t.members in
  let gen0 = Atomic.get t.topo_gen in
  let candidates = Ring.route ring key ~n:(max 1 t.cfg.failover) in
  let rec go i = function
    | [] ->
        Atomic.incr t.shed;
        M.incr m_shed;
        Net.Wire.R_overloaded
    | shard_id :: rest -> (
        let try_next () = go (i + 1) rest in
        (* the barrier guarantees no membership change lands while this
           relay is in flight; the counter proves it stays that way *)
        if Atomic.get t.topo_gen <> gen0 then begin
          Atomic.incr t.stale_routes;
          M.incr m_stale
        end;
        match pool_of t shard_id with
        | None -> try_next ()
        | Some pool -> (
            match
              Pool.with_client pool (fun c ->
                  Net.Client.submit ~trace:s.Net.Wire.sub_trace c
                    ~name:s.Net.Wire.sub_name
                    ~options:s.Net.Wire.sub_options s.Net.Wire.sub_source)
            with
            | Ok reply -> (
                Membership.note_success t.members shard_id;
                match reply with
                | Net.Wire.R_overloaded when rest <> [] ->
                    (* saturated, not dead: spill to the successor *)
                    try_next ()
                | reply ->
                    Atomic.incr t.routed;
                    (match route_counter t shard_id with
                    | Some c -> M.incr c
                    | None -> ());
                    if i > 0 then begin
                      Atomic.incr t.failovers;
                      M.incr m_failover
                    end;
                    schedule_read_repair t ~name:s.Net.Wire.sub_name ~key
                      ~served_by:shard_id reply;
                    reply)
            | Error _ ->
                Membership.note_failure t.members shard_id;
                try_next ()))
  in
  go 0 candidates

(* Cache pushes addressed to the proxy are forwarded to the key's owner
   — lets tooling seed the cluster's warm cache through the front door. *)
let relay_cache_push t (p : Net.Wire.cache_push) =
  match Ring.lookup (Membership.ring t.members) p.Net.Wire.cp_key with
  | None -> false
  | Some shard_id -> (
      match pool_of t shard_id with
      | None -> false
      | Some pool -> (
          match Pool.with_client pool (fun c -> Net.Client.cache_push c p) with
          | Ok admitted -> admitted
          | Error _ ->
              Membership.note_failure t.members shard_id;
              false))

(* ------------------------------------------------------------------ *)
(* Cluster-wide observability                                          *)
(* ------------------------------------------------------------------ *)

(* per-shard fetch for the aggregated views; Down shards are reported
   as unreachable without being dialed *)
let fetch_from_shard t (shard : Membership.shard) st f =
  if st = Membership.Down then Error "down"
  else
    match pool_of t shard.Membership.sh_id with
    | None -> Error "unknown shard"
    | Some pool -> Pool.with_client pool f

let aggregated_stats_json t =
  let shards =
    Membership.snapshot t.members
    |> List.map (fun (shard, st, _) ->
           let body =
             match fetch_from_shard t shard st Net.Client.stats_json with
             | Ok json -> json
             | Error _ -> "null"
           in
           Printf.sprintf "\"%s\":%s" shard.Membership.sh_id body)
  in
  Printf.sprintf
    "{\"proxy\":{\"routed\":%d,\"failovers\":%d,\"shed\":%d,\"members\":%s},\"shards\":{%s}}"
    (Atomic.get t.routed) (Atomic.get t.failovers) (Atomic.get t.shed)
    (Membership.members_json t.members)
    (String.concat "," shards)

(* flat-object integer extraction: enough JSON to lift the replication
   counters out of a shard's Stats_json without a parser dependency *)
let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some (i + nn)
    else go (i + 1)
  in
  go 0

let json_int_field body name =
  match find_sub body (Printf.sprintf "\"%s\":" name) with
  | None -> None
  | Some start ->
      let n = String.length body in
      let stop = ref start in
      if !stop < n && body.[!stop] = '-' then incr stop;
      while !stop < n && body.[!stop] >= '0' && body.[!stop] <= '9' do
        incr stop
      done;
      if !stop = start then None
      else int_of_string_opt (String.sub body start (!stop - start))

let replica_counter_keys =
  [
    "replica_admitted";
    "replica_rejected";
    "replicated_hits";
    "replica_pushed";
    "replica_skipped_down";
  ]

(* the [cedarctl cluster members --json] view: ring epoch, per-shard
   state, and each live shard's replication counters in one object *)
let enriched_members_json t =
  let shards =
    Membership.snapshot t.members
    |> List.map (fun ((shard : Membership.shard), st, fails) ->
           let counters =
             match fetch_from_shard t shard st Net.Client.stats_json with
             | Error _ -> ""
             | Ok body ->
                 replica_counter_keys
                 |> List.filter_map (fun k ->
                        Option.map
                          (Printf.sprintf ",\"%s\":%d" k)
                          (json_int_field body k))
                 |> String.concat ""
           in
           let idle =
             match pool_of t shard.Membership.sh_id with
             | Some p -> Pool.idle_count p
             | None -> 0
           in
           Printf.sprintf
             "{\"id\":\"%s\",\"host\":\"%s\",\"port\":%d,\"state\":\"%s\",\"fails\":%d,\"pool_idle\":%d%s}"
             shard.Membership.sh_id shard.Membership.sh_host
             shard.Membership.sh_port
             (Membership.state_name st)
             fails idle counters)
  in
  Printf.sprintf
    "{\"epoch\":%d,\"vnodes\":%d,\"proxy\":{\"routed\":%d,\"failovers\":%d,\"shed\":%d,\"stale_routes\":%d,\"read_repairs\":%d,\"topology_changes\":%d},\"shards\":[%s]}"
    (Membership.epoch t.members)
    (Membership.vnodes t.members)
    (Atomic.get t.routed) (Atomic.get t.failovers) (Atomic.get t.shed)
    (Atomic.get t.stale_routes)
    (Atomic.get t.read_repairs)
    (Atomic.get t.topo_gen)
    (String.concat "," shards)

let aggregated_stats_text t =
  let header =
    Printf.sprintf "cluster     routed %d  failovers %d  shed %d"
      (Atomic.get t.routed) (Atomic.get t.failovers) (Atomic.get t.shed)
  in
  let sections =
    Membership.snapshot t.members
    |> List.map (fun (shard, st, fails) ->
           let title =
             Printf.sprintf "--- shard %s (%s:%d) %s, %d consecutive fails ---"
               shard.Membership.sh_id shard.Membership.sh_host
               shard.Membership.sh_port (Membership.state_name st) fails
           in
           let body =
             match fetch_from_shard t shard st Net.Client.stats with
             | Ok text -> text
             | Error msg -> "unreachable: " ^ msg
           in
           title ^ "\n" ^ body)
  in
  String.concat "\n" (header :: sections)

(* ------------------------------------------------------------------ *)
(* Topology changes                                                    *)
(* ------------------------------------------------------------------ *)

let shard_pool cfg (s : Membership.shard) =
  let ccfg =
    {
      (Net.Client.default_cfg ~port:s.Membership.sh_port) with
      Net.Client.host = s.Membership.sh_host;
      connect_timeout_s = Float.min 5.0 cfg.shard_timeout_s;
      request_timeout_s = cfg.shard_timeout_s;
      max_attempts = 2;
    }
  in
  Pool.create ccfg

let shard_route_counter (s : Membership.shard) =
  M.counter M.global ~help:"submits routed to this shard"
    (Printf.sprintf "cluster_route_%s_total" s.Membership.sh_id)

(* Best-effort fan-out of an applied change to the shards themselves:
   each cedard rewires its replicator's ring on receipt.  A shard that
   misses the broadcast (down, restarting) is tolerated — its
   replicas land per the old ring until the next change or restart,
   and the receiving side re-verifies every push regardless. *)
let broadcast_change t ?skip msg =
  Membership.snapshot t.members
  |> List.iter (fun ((shard : Membership.shard), st, _) ->
         let id = shard.Membership.sh_id in
         if st <> Membership.Down && skip <> Some id then
           match pool_of t id with
           | None -> ()
           | Some pool ->
               ignore
                 (Pool.with_client pool (fun c ->
                      match msg with
                      | `Add a -> Result.map ignore (Net.Client.cluster_add c a)
                      | `Remove sid ->
                          Result.map ignore (Net.Client.cluster_remove c sid))))

let handle_cluster_add t (a : Net.Wire.cluster_add) =
  let shard =
    {
      Membership.sh_id = a.Net.Wire.ca_id;
      sh_host = a.Net.Wire.ca_host;
      sh_port = a.Net.Wire.ca_port;
    }
  in
  let outcome =
    change_topology t (fun () ->
        match Membership.add_shard t.members shard with
        | Error _ as e -> e
        | Ok epoch ->
            if not (List.mem_assoc shard.Membership.sh_id t.pools) then
              t.pools <-
                (shard.Membership.sh_id, shard_pool t.cfg shard) :: t.pools;
            if not (List.mem_assoc shard.Membership.sh_id t.route_counters)
            then
              t.route_counters <-
                (shard.Membership.sh_id, shard_route_counter shard)
                :: t.route_counters;
            Ok epoch)
  in
  match outcome with
  | Ok epoch ->
      broadcast_change t ~skip:shard.Membership.sh_id (`Add a);
      {
        Net.Wire.ack_ok = true;
        ack_epoch = epoch;
        ack_msg =
          Printf.sprintf "added %s (%s:%d); ring epoch %d" a.Net.Wire.ca_id
            a.Net.Wire.ca_host a.Net.Wire.ca_port epoch;
      }
  | Error msg ->
      {
        Net.Wire.ack_ok = false;
        ack_epoch = Membership.epoch t.members;
        ack_msg = msg;
      }

let handle_cluster_remove t sid =
  let outcome =
    change_topology t (fun () ->
        match Membership.remove_shard t.members sid with
        | Error _ as e -> e
        | Ok epoch ->
            let closing = List.assoc_opt sid t.pools in
            t.pools <- List.remove_assoc sid t.pools;
            Ok (epoch, closing))
  in
  match outcome with
  | Ok (epoch, closing) ->
      (match closing with Some p -> Pool.close_all p | None -> ());
      broadcast_change t (`Remove sid);
      {
        Net.Wire.ack_ok = true;
        ack_epoch = epoch;
        ack_msg = Printf.sprintf "removed %s; ring epoch %d" sid epoch;
      }
  | Error msg ->
      {
        Net.Wire.ack_ok = false;
        ack_epoch = Membership.epoch t.members;
        ack_msg = msg;
      }

(* ------------------------------------------------------------------ *)
(* Per-connection fibers                                               *)
(* ------------------------------------------------------------------ *)

let rec try_reserve t =
  let cur = Atomic.get t.inflight in
  if cur >= t.cfg.max_inflight then false
  else if Atomic.compare_and_set t.inflight cur (cur + 1) then begin
    M.set_gauge m_inflight (float_of_int (cur + 1));
    true
  end
  else try_reserve t

let release t =
  Atomic.decr t.inflight;
  M.set_gauge m_inflight (float_of_int (Atomic.get t.inflight))

(* the aggregated-stats round trips dial every shard synchronously, so
   they also belong on the executor, not the event loop *)
let spawn_relay t conn ~id work =
  conn.c_alive <- conn.c_alive + 1;
  ignore
    (Aio.spawn (fun () ->
         let pr = Aio.promise () in
         let ran =
           Exec.submit t.exec (fun () ->
               let reply =
                 try work ()
                 with _ ->
                   Net.Wire.Result (Net.Wire.R_error "proxy relay failed")
               in
               Aio.fulfil pr reply)
         in
         if not ran then begin
           (* executor gone: only possible mid-teardown; shed typed *)
           Atomic.incr t.shed;
           M.incr m_shed;
           Aio.fulfil pr (Net.Wire.Result Net.Wire.R_overloaded)
         end;
         (match Aio.await pr with
         | `Value reply -> send conn ~id reply
         | `Deadline -> ());
         release t;
         producer_finished conn))

let dispatch t conn ~id msg =
  match msg with
  | Net.Wire.Ping ->
      send conn ~id Net.Wire.Pong;
      `Continue
  | Net.Wire.Submit s ->
      if not (try_reserve t) then begin
        Atomic.incr t.shed;
        M.incr m_shed;
        send conn ~id (Net.Wire.Result Net.Wire.R_overloaded)
      end
      else
        spawn_relay t conn ~id (fun () ->
            with_relay_barrier t (fun () ->
                Net.Wire.Result (relay_submit t s)));
      `Continue
  | Net.Wire.Cache_push p ->
      if not (try_reserve t) then begin
        Atomic.incr t.shed;
        M.incr m_shed;
        send conn ~id (Net.Wire.Cache_ack false)
      end
      else
        spawn_relay t conn ~id (fun () ->
            with_relay_barrier t (fun () ->
                Net.Wire.Cache_ack (relay_cache_push t p)));
      `Continue
  | Net.Wire.Stats_req ->
      if try_reserve t then
        spawn_relay t conn ~id (fun () ->
            with_relay_barrier t (fun () ->
                Net.Wire.Stats_text (aggregated_stats_text t)))
      else send conn ~id (Net.Wire.Result Net.Wire.R_overloaded);
      `Continue
  | Net.Wire.Stats_json_req ->
      if try_reserve t then
        spawn_relay t conn ~id (fun () ->
            with_relay_barrier t (fun () ->
                Net.Wire.Stats_json (aggregated_stats_json t)))
      else send conn ~id (Net.Wire.Result Net.Wire.R_overloaded);
      `Continue
  | Net.Wire.Members_json_req ->
      if try_reserve t then
        spawn_relay t conn ~id (fun () ->
            with_relay_barrier t (fun () ->
                Net.Wire.Members_json (enriched_members_json t)))
      else send conn ~id (Net.Wire.Result Net.Wire.R_overloaded);
      `Continue
  | Net.Wire.Cluster_add a ->
      (* topology changes take the drain side of the barrier, never the
         relay side — no [with_relay_barrier] here *)
      if try_reserve t then
        spawn_relay t conn ~id (fun () ->
            Net.Wire.Cluster_ack (handle_cluster_add t a))
      else
        send conn ~id
          (Net.Wire.Cluster_ack
             {
               Net.Wire.ack_ok = false;
               ack_epoch = Membership.epoch t.members;
               ack_msg = "proxy overloaded; retry the membership change";
             });
      `Continue
  | Net.Wire.Cluster_remove sid ->
      if try_reserve t then
        spawn_relay t conn ~id (fun () ->
            Net.Wire.Cluster_ack (handle_cluster_remove t sid))
      else
        send conn ~id
          (Net.Wire.Cluster_ack
             {
               Net.Wire.ack_ok = false;
               ack_epoch = Membership.epoch t.members;
               ack_msg = "proxy overloaded; retry the membership change";
             });
      `Continue
  | Net.Wire.Metrics_req ->
      send conn ~id (Net.Wire.Metrics_text (M.dump M.global));
      `Continue
  | Net.Wire.Metrics_json_req ->
      send conn ~id (Net.Wire.Metrics_json (M.to_json M.global));
      `Continue
  | Net.Wire.Members_req ->
      send conn ~id (Net.Wire.Members_text (Membership.members_json t.members));
      `Continue
  | Net.Wire.Shutdown_req ->
      (* stops the proxy only; shards are shut down by their own owners *)
      send conn ~id Net.Wire.Shutdown_ack;
      Atomic.set t.stop true;
      (match t.accept_fiber with Some f -> Aio.cancel f | None -> ());
      `Close
  | Net.Wire.Pong | Net.Wire.Result _ | Net.Wire.Stats_text _
  | Net.Wire.Metrics_text _ | Net.Wire.Shutdown_ack | Net.Wire.Cache_ack _
  | Net.Wire.Stats_json _ | Net.Wire.Metrics_json _ | Net.Wire.Members_text _
  | Net.Wire.Cluster_ack _ | Net.Wire.Members_json _ ->
      send conn ~id
        (Net.Wire.Result
           (Net.Wire.R_error
              (Printf.sprintf "unexpected %s frame from a client"
                 (Net.Wire.message_kind_name msg))));
      `Close

let reader t conn =
  let stream = Net.Wire.Stream.create () in
  (* same deadline discipline as Net.Server: idle connections carry no
     timer; the first byte of a frame arms one absolute deadline *)
  let frame_deadline = ref None in
  let update_deadline () =
    if Net.Wire.Stream.midframe stream then begin
      if !frame_deadline = None && t.cfg.read_timeout_s > 0.0 then
        frame_deadline := Some (Aio.now () +. t.cfg.read_timeout_s)
    end
    else frame_deadline := None
  in
  let rec loop () =
    if conn.c_dead || Atomic.get t.draining then ()
    else
      match Net.Wire.Stream.next stream with
      | `Frame (id, msg) -> (
          update_deadline ();
          match dispatch t conn ~id msg with
          | `Continue -> loop ()
          | `Close -> ())
      | `Oversized (id, got) ->
          update_deadline ();
          send conn ~id
            (Net.Wire.Result
               (Net.Wire.R_too_large
                  { limit = Net.Wire.hard_max_payload; got }));
          loop ()
      | `Fail err ->
          send conn ~id:0
            (Net.Wire.Result
               (Net.Wire.R_error (Net.Wire.error_to_string err)))
      | `Need_more -> (
          update_deadline ();
          match
            Aio.read ?deadline:!frame_deadline conn.c_fd t.scratch 0
              (Bytes.length t.scratch)
          with
          | `Data n ->
              Net.Wire.Stream.feed stream t.scratch 0 n;
              loop ()
          | `Eof -> ()
          | `Deadline -> kill_conn conn)
  in
  (try loop () with _ -> ());
  producer_finished conn

(* ------------------------------------------------------------------ *)
(* Accept fiber / lifecycle                                            *)
(* ------------------------------------------------------------------ *)

let handle_accept t fd =
  if Atomic.get t.stop then (
    try Unix.close fd with Unix.Unix_error _ -> ())
  else if List.length t.conns >= t.cfg.max_conns then begin
    Atomic.incr t.shed;
    M.incr m_shed;
    Unix.set_nonblock fd;
    ignore
      (Aio.spawn (fun () ->
           let s =
             Net.Wire.encode ~id:0 (Net.Wire.Result Net.Wire.R_overloaded)
           in
           let b = Bytes.unsafe_of_string s in
           ignore
             (Aio.write_all
                ~deadline:(Aio.now () +. 5.0)
                fd b 0 (Bytes.length b));
           try Unix.close fd with Unix.Unix_error _ -> ()))
  end
  else begin
    Unix.set_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    let conn =
      {
        c_fd = fd;
        c_out = Aio.Mailbox.create ();
        c_dead = false;
        c_alive = 1;
      }
    in
    t.conns <- conn :: t.conns;
    ignore (Aio.spawn (fun () -> writer t conn));
    ignore (Aio.spawn (fun () -> reader t conn))
  end

let accept_loop t =
  try
    let rec loop () =
      if Atomic.get t.stop then ()
      else
        match Aio.accept t.listen_fd with
        | `Conn (fd, _addr) ->
            handle_accept t fd;
            loop ()
        | `Deadline -> loop ()
        | `Error _ -> Atomic.set t.stop true
    in
    loop ()
  with Aio.Cancelled -> ()

let create ?(cfg = default_cfg) ?(vnodes = 64) ?(probe_ms = 500.0)
    ?(down_after = 2) ?(seed = 0x5eed) shards =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let members =
    Membership.create ~vnodes ~probe_ms ~down_after
      ~timeout_s:(Float.min 1.0 cfg.shard_timeout_s) ~seed shards
  in
  let pools =
    List.map
      (fun (s : Membership.shard) -> (s.Membership.sh_id, shard_pool cfg s))
      shards
  in
  let route_counters =
    List.map
      (fun (s : Membership.shard) ->
        (s.Membership.sh_id, shard_route_counter s))
      shards
  in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port) in
  (try Unix.bind listen_fd addr
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     Membership.stop members;
     raise e);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> cfg.port
  in
  let t =
    {
      cfg;
      members;
      pools;
      listen_fd;
      bound_port;
      sched = Aio.create ();
      exec = Exec.create 16;
      stop = Atomic.make false;
      draining = Atomic.make false;
      inflight = Atomic.make 0;
      routed = Atomic.make 0;
      failovers = Atomic.make 0;
      shed = Atomic.make 0;
      route_counters;
      topo_mu = Mutex.create ();
      topo_cv = Condition.create ();
      topo_draining = false;
      active_relays = 0;
      topo_gen = Atomic.make 0;
      stale_routes = Atomic.make 0;
      read_repairs = Atomic.make 0;
      scratch = Bytes.create 65536;
      conns = [];
      accept_fiber = None;
      loop_thread = None;
    }
  in
  t.loop_thread <-
    Some
      (Thread.create
         (fun () ->
           Aio.run t.sched (fun () ->
               t.accept_fiber <- Some (Aio.self ());
               accept_loop t))
         ());
  t

let port t = t.bound_port
let membership t = t.members

let request_stop t =
  Atomic.set t.stop true;
  Aio.post t.sched (fun () ->
      match t.accept_fiber with
      | Some f -> Aio.cancel_on t.sched f
      | None -> ())

let wait_stop t =
  while not (Atomic.get t.stop) do
    Thread.delay 0.05
  done

let drain t =
  if not (Atomic.exchange t.draining true) then begin
    request_stop t;
    (* on the loop thread: stop the readers — relay fibers still in
       flight finish their shard round trips and their replies flush
       through the writer before the loop drains *)
    Aio.post t.sched (fun () ->
        List.iter
          (fun c ->
            try Unix.shutdown c.c_fd Unix.SHUTDOWN_RECEIVE
            with Unix.Unix_error _ -> ())
          t.conns);
    (match t.loop_thread with
    | Some th ->
        Thread.join th;
        t.loop_thread <- None
    | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Membership.stop t.members;
    (* all relay fibers are done, so the executor is idle *)
    Exec.shutdown t.exec;
    let pools =
      Mutex.lock t.topo_mu;
      let p = t.pools in
      Mutex.unlock t.topo_mu;
      p
    in
    List.iter (fun (_, p) -> Pool.close_all p) pools
  end

let routed_total t = Atomic.get t.routed
let failover_total t = Atomic.get t.failovers
let shed_total t = Atomic.get t.shed
let epoch t = Membership.epoch t.members
let stale_routes_total t = Atomic.get t.stale_routes
let read_repair_total t = Atomic.get t.read_repairs
let topology_changes_total t = Atomic.get t.topo_gen
