(* Consistent hashing with virtual nodes.  See ring.mli for the
   contract; the implementation is a sorted array of (point, shard)
   pairs and a binary search — O(V*N log (V*N)) to build, O(log (V*N))
   per lookup, immutable thereafter. *)

type t = {
  points : (int * string) array;  (* sorted by point *)
  members : string list;  (* distinct, sorted *)
}

(* A point is the first 8 bytes of MD5("id#i"), masked to a nonnegative
   OCaml int.  MD5 via [Digest] is in the stdlib, plenty uniform for
   placement, and — crucially — identical on every architecture and in
   every process, so proxy and shards agree on the ring without
   coordination. *)
let point_of id i =
  let d = Digest.string (id ^ "#" ^ string_of_int i) in
  let x = String.get_int64_be d 0 in
  Int64.to_int (Int64.shift_right_logical x 2) land max_int

let make ?(vnodes = 64) ids =
  if vnodes < 1 then invalid_arg "Ring.make: vnodes < 1";
  let members = List.sort_uniq compare ids in
  let points =
    List.concat_map
      (fun id -> List.init vnodes (fun i -> (point_of id i, id)))
      members
    |> Array.of_list
  in
  Array.sort compare points;
  { points; members }

let members t = t.members
let size t = List.length t.members

(* index of the first point strictly greater than [h], wrapping to 0 —
   the clockwise walk's starting position for a key hashing to [h] *)
let start_index t h =
  let n = Array.length t.points in
  let rec bsearch lo hi =
    (* invariant: points.[lo-1] <= h < points.[hi] (with sentinels) *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst t.points.(mid) <= h then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  let i = bsearch 0 n in
  if i = n then 0 else i

let key_point key = Int64.to_int (Int64.shift_right_logical (String.get_int64_be (Digest.string key) 0) 2) land max_int

let lookup t key =
  if Array.length t.points = 0 then None
  else Some (snd t.points.(start_index t (key_point key)))

let route t key ~n =
  let np = Array.length t.points in
  if np = 0 || n <= 0 then []
  else begin
    let start = start_index t (key_point key) in
    let want = min n (size t) in
    let acc = ref [] in
    let i = ref 0 in
    while List.length !acc < want && !i < np do
      let shard = snd t.points.((start + !i) mod np) in
      if not (List.mem shard !acc) then acc := !acc @ [ shard ];
      incr i
    done;
    !acc
  end

let successor t self ~key =
  (* walk far enough to see every shard at least once *)
  route t key ~n:(size t) |> List.find_opt (fun id -> id <> self)

let successors t self ~key ~n =
  if n <= 0 then []
  else
    route t key ~n:(size t)
    |> List.filter (fun id -> id <> self)
    |> List.filteri (fun i _ -> i < n)
