type t = {
  cfg : Net.Client.cfg;
  max_idle : int;
  mutex : Mutex.t;
  mutable idle : Net.Client.t list;
  mutable closed : bool;
}

let create ?(max_idle = 8) cfg =
  { cfg; max_idle = max 0 max_idle; mutex = Mutex.create (); idle = []; closed = false }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let checkout t =
  match with_lock t (fun () ->
      match t.idle with
      | c :: rest ->
          t.idle <- rest;
          Some c
      | [] -> None)
  with
  | Some c -> Ok c
  | None -> Net.Client.connect t.cfg

let checkin t c ~healthy =
  let keep =
    healthy
    && with_lock t (fun () ->
           if (not t.closed) && List.length t.idle < t.max_idle then begin
             t.idle <- c :: t.idle;
             true
           end
           else false)
  in
  if not keep then Net.Client.close c

let with_client t f =
  match checkout t with
  | Error _ as e -> e
  | Ok c -> (
      match f c with
      | Ok _ as ok ->
          checkin t c ~healthy:true;
          ok
      | Error _ as e ->
          (* the socket may hold half a conversation: drop it *)
          checkin t c ~healthy:false;
          e
      | exception e ->
          checkin t c ~healthy:false;
          raise e)

let idle_count t = with_lock t (fun () -> List.length t.idle)

let close_all t =
  let drained =
    with_lock t (fun () ->
        t.closed <- true;
        let cs = t.idle in
        t.idle <- [];
        cs)
  in
  List.iter Net.Client.close drained
