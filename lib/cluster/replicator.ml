type item = { it_key : string; it_digest : string; it_payload : Service.Server.payload }

type counts = {
  pushed : int;
  admitted : int;
  rejected : int;
  dropped : int;
  errors : int;
  skipped_down : int;
}

(* Push-path peer health: a peer that keeps eating transport errors is
   skipped (counted, not retried) until a cooldown expires, so pushes
   aimed at a dead shard stop burning pool connections.  This is
   deliberately local to the replicator — a shard has no membership
   view; the proxy's prober is the authority, this is just the
   replicator not stepping on the same rake twice per entry. *)
type peer_health = { mutable ph_fails : int; mutable ph_retry_at : float }

let down_after = 2
let cooldown_s = 2.0

type t = {
  self : string;
  replicas : int;  (* total copies of a key, primary included *)
  vnodes : int;
  timeout_s : float;
  mutex : Mutex.t;
  mutable ring : Ring.t;
  mutable pools : (string * Pool.t) list;  (* by shard id, self excluded *)
  health : (string, peer_health) Hashtbl.t;
  mutable export :
    (unit -> (string * string * Service.Server.payload) list) option;
  mutable gc : (keep:(string -> bool) -> int) option;
      (* drops replica-flagged cache entries failing [keep]; wired to
         [Service.Server.gc_replicas] *)
  queue : item Service.Bounded_queue.t;
  c_pushed : int Atomic.t;
  c_admitted : int Atomic.t;
  c_rejected : int Atomic.t;
  c_dropped : int Atomic.t;
  c_errors : int Atomic.t;
  c_skipped : int Atomic.t;
  mutable sender : Thread.t option;
}

module M = Obs.Metrics

let m_pushed =
  M.counter M.global ~help:"warm-cache entries pushed to a ring successor"
    "cluster_replication_pushed_total"

let m_admitted =
  M.counter M.global ~help:"warm-cache pushes admitted by the peer"
    "cluster_replication_admitted_total"

let m_dropped =
  M.counter M.global ~help:"warm-cache pushes dropped on a full queue"
    "cluster_replication_dropped_total"

let m_errors =
  M.counter M.global ~help:"warm-cache pushes lost to transport errors"
    "cluster_replication_errors_total"

let m_skipped =
  M.counter M.global
    ~help:"warm-cache pushes skipped because the target was held down"
    "cluster_replication_skipped_down_total"

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let cache_push_of_item it =
  let p = it.it_payload in
  {
    Net.Wire.cp_key = it.it_key;
    cp_digest = it.it_digest;
    cp_name = p.Service.Server.p_name;
    cp_text = p.Service.Server.p_text;
    cp_cycles = p.Service.Server.p_cycles;
    cp_global_words = p.Service.Server.p_global_words;
    cp_notes = List.map Net.Wire.note_of_report p.Service.Server.p_reports;
  }

(* health bookkeeping, all under the lock *)
let target_usable t id now =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.health id with
      | None -> true
      | Some ph -> ph.ph_fails < down_after || now >= ph.ph_retry_at)

let note_peer_ok t id =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.health id with
      | None -> ()
      | Some ph -> ph.ph_fails <- 0)

let note_peer_error t id now =
  with_lock t (fun () ->
      let ph =
        match Hashtbl.find_opt t.health id with
        | Some ph -> ph
        | None ->
            let ph = { ph_fails = 0; ph_retry_at = 0.0 } in
            Hashtbl.replace t.health id ph;
            ph
      in
      ph.ph_fails <- ph.ph_fails + 1;
      if ph.ph_fails >= down_after then ph.ph_retry_at <- now +. cooldown_s)

let send_to t it target =
  let now = Unix.gettimeofday () in
  if not (target_usable t target now) then begin
    Atomic.incr t.c_skipped;
    M.incr m_skipped
  end
  else
    match with_lock t (fun () -> List.assoc_opt target t.pools) with
    | None -> Atomic.incr t.c_errors
    | Some pool -> (
        match
          Pool.with_client pool (fun c ->
              Net.Client.cache_push c (cache_push_of_item it))
        with
        | Ok admitted ->
            note_peer_ok t target;
            Atomic.incr t.c_pushed;
            M.incr m_pushed;
            if admitted then begin
              Atomic.incr t.c_admitted;
              M.incr m_admitted
            end
            else Atomic.incr t.c_rejected
        | Error _ ->
            note_peer_error t target (Unix.gettimeofday ());
            Atomic.incr t.c_errors;
            M.incr m_errors)

let send_one t it =
  let ring, extra = with_lock t (fun () -> (t.ring, t.replicas - 1)) in
  (* the key's first R-1 distinct ring successors after this shard —
     under R total copies, where every replica of the key belongs *)
  let targets = Ring.successors ring t.self ~key:it.it_key ~n:extra in
  List.iter (fun target -> send_to t it target) targets

let sender_loop t =
  let rec go () =
    match Service.Bounded_queue.pop t.queue with
    | None -> () (* closed and drained *)
    | Some it ->
        (try send_one t it with _ -> Atomic.incr t.c_errors);
        go ()
  in
  go ()

let make_pools ~timeout_s ~self peers =
  peers
  |> List.filter (fun s -> s.Membership.sh_id <> self)
  |> List.map (fun s ->
         let cfg =
           {
             (Net.Client.default_cfg ~port:s.Membership.sh_port) with
             Net.Client.host = s.Membership.sh_host;
             connect_timeout_s = timeout_s;
             request_timeout_s = timeout_s;
             max_attempts = 2;
           }
         in
         (s.Membership.sh_id, Pool.create ~max_idle:2 cfg))

let create ?(vnodes = 64) ?(queue_capacity = 256) ?(timeout_s = 5.0)
    ?(replicas = 2) ~self ~peers () =
  let ids = List.map (fun s -> s.Membership.sh_id) peers in
  let t =
    {
      self;
      replicas = max 1 replicas;
      vnodes;
      timeout_s;
      mutex = Mutex.create ();
      ring = Ring.make ~vnodes ids;
      pools = make_pools ~timeout_s ~self peers;
      health = Hashtbl.create 8;
      export = None;
      gc = None;
      queue = Service.Bounded_queue.create ~capacity:(max 1 queue_capacity);
      c_pushed = Atomic.make 0;
      c_admitted = Atomic.make 0;
      c_rejected = Atomic.make 0;
      c_dropped = Atomic.make 0;
      c_errors = Atomic.make 0;
      c_skipped = Atomic.make 0;
      sender = None;
    }
  in
  t.sender <- Some (Thread.create sender_loop t);
  t

let push t ~key ~digest payload =
  let it = { it_key = key; it_digest = digest; it_payload = payload } in
  if not (Service.Bounded_queue.try_push t.queue it) then begin
    Atomic.incr t.c_dropped;
    M.incr m_dropped
  end

let set_export t f = with_lock t (fun () -> t.export <- Some f)
let set_gc t f = with_lock t (fun () -> t.gc <- Some f)

(* does [self] still back [key] under [ring]?  A shard backs a key when
   it is the owner or one of the first [replicas - 1] distinct
   successors — exactly the set an origin pushes to, so GC and push
   placement can never disagree. *)
let backs ring ~self ~replicas key =
  List.mem self (Ring.route ring key ~n:replicas)

let set_members t peers =
  let old_pools =
    with_lock t (fun () ->
        let ids = List.map (fun s -> s.Membership.sh_id) peers in
        t.ring <- Ring.make ~vnodes:t.vnodes ids;
        let old = t.pools in
        t.pools <- make_pools ~timeout_s:t.timeout_s ~self:t.self peers;
        Hashtbl.reset t.health;
        old)
  in
  List.iter (fun (_, p) -> Pool.close_all p) old_pools;
  (* replica GC first: entries this shard held as a successor but no
     longer backs under the new ring are dropped before the re-export
     below, so an ex-successor neither re-pushes nor keeps serving
     entries that now belong elsewhere *)
  let ring, gc = with_lock t (fun () -> (t.ring, t.gc)) in
  (match gc with
  | None -> ()
  | Some f ->
      ignore (f ~keep:(backs ring ~self:t.self ~replicas:t.replicas)));
  (* re-replication: placement moved under the new ring, so every
     resident entry is re-queued once.  Receivers re-verify and
     deduplicate (an entry already resident is just re-admitted), and
     this is a one-shot pass, not hook-driven — no ping-pong. *)
  let export = with_lock t (fun () -> t.export) in
  match export with
  | None -> ()
  | Some f ->
      List.iter
        (fun (key, digest, payload) -> push t ~key ~digest payload)
        (f ())

let replicas t = t.replicas

let counts t =
  {
    pushed = Atomic.get t.c_pushed;
    admitted = Atomic.get t.c_admitted;
    rejected = Atomic.get t.c_rejected;
    dropped = Atomic.get t.c_dropped;
    errors = Atomic.get t.c_errors;
    skipped_down = Atomic.get t.c_skipped;
  }

let stop t =
  Service.Bounded_queue.close t.queue;
  (match t.sender with
  | None -> ()
  | Some th ->
      t.sender <- None;
      Thread.join th);
  List.iter (fun (_, p) -> Pool.close_all p) t.pools
