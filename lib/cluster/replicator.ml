type item = { it_key : string; it_digest : string; it_payload : Service.Server.payload }

type counts = {
  pushed : int;
  admitted : int;
  rejected : int;
  dropped : int;
  errors : int;
}

type t = {
  self : string;
  ring : Ring.t;
  pools : (string * Pool.t) list;  (* by shard id, self excluded *)
  queue : item Service.Bounded_queue.t;
  c_pushed : int Atomic.t;
  c_admitted : int Atomic.t;
  c_rejected : int Atomic.t;
  c_dropped : int Atomic.t;
  c_errors : int Atomic.t;
  mutable sender : Thread.t option;
}

module M = Obs.Metrics

let m_pushed =
  M.counter M.global ~help:"warm-cache entries pushed to a ring successor"
    "cluster_replication_pushed_total"

let m_admitted =
  M.counter M.global ~help:"warm-cache pushes admitted by the peer"
    "cluster_replication_admitted_total"

let m_dropped =
  M.counter M.global ~help:"warm-cache pushes dropped on a full queue"
    "cluster_replication_dropped_total"

let m_errors =
  M.counter M.global ~help:"warm-cache pushes lost to transport errors"
    "cluster_replication_errors_total"

let cache_push_of_item it =
  let p = it.it_payload in
  {
    Net.Wire.cp_key = it.it_key;
    cp_digest = it.it_digest;
    cp_name = p.Service.Server.p_name;
    cp_text = p.Service.Server.p_text;
    cp_cycles = p.Service.Server.p_cycles;
    cp_global_words = p.Service.Server.p_global_words;
    cp_notes = List.map Net.Wire.note_of_report p.Service.Server.p_reports;
  }

let send_one t it =
  match Ring.successor t.ring t.self ~key:it.it_key with
  | None -> () (* single-shard cluster: nowhere to replicate *)
  | Some target -> (
      match List.assoc_opt target t.pools with
      | None -> Atomic.incr t.c_errors
      | Some pool -> (
          match
            Pool.with_client pool (fun c ->
                Net.Client.cache_push c (cache_push_of_item it))
          with
          | Ok admitted ->
              Atomic.incr t.c_pushed;
              M.incr m_pushed;
              if admitted then begin
                Atomic.incr t.c_admitted;
                M.incr m_admitted
              end
              else Atomic.incr t.c_rejected
          | Error _ ->
              Atomic.incr t.c_errors;
              M.incr m_errors))

let sender_loop t =
  let rec go () =
    match Service.Bounded_queue.pop t.queue with
    | None -> () (* closed and drained *)
    | Some it ->
        (try send_one t it with _ -> Atomic.incr t.c_errors);
        go ()
  in
  go ()

let create ?(vnodes = 64) ?(queue_capacity = 256) ?(timeout_s = 5.0) ~self
    ~peers () =
  let ids = List.map (fun s -> s.Membership.sh_id) peers in
  let ring = Ring.make ~vnodes ids in
  let pools =
    peers
    |> List.filter (fun s -> s.Membership.sh_id <> self)
    |> List.map (fun s ->
           let cfg =
             {
               (Net.Client.default_cfg ~port:s.Membership.sh_port) with
               Net.Client.host = s.Membership.sh_host;
               connect_timeout_s = timeout_s;
               request_timeout_s = timeout_s;
               max_attempts = 2;
             }
           in
           (s.Membership.sh_id, Pool.create ~max_idle:2 cfg))
  in
  let t =
    {
      self;
      ring;
      pools;
      queue = Service.Bounded_queue.create ~capacity:(max 1 queue_capacity);
      c_pushed = Atomic.make 0;
      c_admitted = Atomic.make 0;
      c_rejected = Atomic.make 0;
      c_dropped = Atomic.make 0;
      c_errors = Atomic.make 0;
      sender = None;
    }
  in
  t.sender <- Some (Thread.create sender_loop t);
  t

let push t ~key ~digest payload =
  let it = { it_key = key; it_digest = digest; it_payload = payload } in
  if not (Service.Bounded_queue.try_push t.queue it) then begin
    Atomic.incr t.c_dropped;
    M.incr m_dropped
  end

let counts t =
  {
    pushed = Atomic.get t.c_pushed;
    admitted = Atomic.get t.c_admitted;
    rejected = Atomic.get t.c_rejected;
    dropped = Atomic.get t.c_dropped;
    errors = Atomic.get t.c_errors;
  }

let stop t =
  Service.Bounded_queue.close t.queue;
  (match t.sender with
  | None -> ()
  | Some th ->
      t.sender <- None;
      Thread.join th);
  List.iter (fun (_, p) -> Pool.close_all p) t.pools
