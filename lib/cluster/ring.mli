(** Consistent-hash ring over cluster shards.

    Each shard id is expanded into [vnodes] virtual points on a 63-bit
    circle (points are the leading bytes of an MD5 digest of
    ["id#i"]); a key routes to the owner of the first point clockwise
    from the key's own hash.  Virtual nodes smooth the load: with V
    points per shard the expected imbalance shrinks like 1/sqrt(V).

    The structure is immutable and purely functional over its inputs —
    the same member list (in any order) and the same [vnodes] always
    produce the same routing, on every process and every run.  That
    determinism is what makes cluster routing testable and what makes
    the proxy and the shard-side replicators agree on key placement
    without talking to each other.

    Consistency property (the point of the exercise): when one of N
    shards leaves, only the keys it owned move — about K/N of K keys —
    and every key it did not own keeps its owner.  Tested by qcheck. *)

type t

val make : ?vnodes:int -> string list -> t
(** Build a ring over the given shard ids.  [vnodes] (default 64) is
    the number of virtual points per shard.  Duplicate ids collapse to
    one membership.  An empty list is a valid, empty ring.
    @raise Invalid_argument when [vnodes < 1] *)

val members : t -> string list
(** The distinct shard ids on the ring, sorted. *)

val size : t -> int
(** Number of distinct shards. *)

val lookup : t -> string -> string option
(** [lookup t key] is the owning shard for [key], or [None] on an
    empty ring. *)

val route : t -> string -> n:int -> string list
(** [route t key ~n] is the owner followed by up to [n-1] distinct
    successor shards, walking clockwise — the failover candidates, in
    order.  Never longer than [size t]. *)

val successor : t -> string -> key:string -> string option
(** [successor t self ~key] is the first shard clockwise from [key]'s
    owner position that is not [self] — where a replica of [key]
    belongs.  [None] when the ring has no other shard. *)

val successors : t -> string -> key:string -> n:int -> string list
(** [successors t self ~key ~n] is the first [n] distinct shards
    clockwise from [key]'s owner position that are not [self] — where
    the [n] replicas of [key] belong under replication factor [n+1].
    Shorter than [n] when the ring has fewer other shards. *)
