(** Independent re-verification of Cedar Fortran parallel loops.

    The restructurer promises that every concurrent loop it emits is free
    of unsynchronized loop-carried dependences.  This module checks that
    promise from the outside: it takes (emitted) Cedar Fortran, re-runs
    dependence analysis on each parallel loop body with its own fact
    collection, and reports every way the loop could race:

    - an unsynchronized loop-carried array dependence on a non-private
      array in a DOALL body;
    - a scalar written in a parallel body that is neither loop-local,
      the loop index, a guarded last-value copy, nor (in a DOACROSS)
      confined to the synchronized region;
    - a DOACROSS whose [await] delay factor exceeds some carried
      dependence distance (the cascade completes iterations cumulatively,
      so [await(i, d)] only waits for iterations [<= i - d]: any
      dependence of distance [k < d] is left uncovered), whose delay is
      not a compile-time constant, whose carried distances are unknown,
      or whose await/advance do not bracket the dependence region;
    - preamble/postamble writes to shared data outside [lock]/[unlock];
    - a call whose interprocedural summary cannot prove it safe to run
      in concurrent iterations.

    [reverify] goes one step further: it prints the program and reparses
    it before checking, so the verdict applies to the text we actually
    ship, not the in-memory tree.

    The checker is deliberately conservative: it accepts the specific
    synchronization and privatization patterns the restructurer emits
    (loop-local declarations, [IF (i .EQ. hi)] last-value copies,
    lock-bracketed reduction merges, two-version loops under a run-time
    dependence test) and flags everything else. *)

open Fortran
open Analysis
module SSet = Ast_utils.SSet
module SMap = Ast_utils.SMap

type issue = {
  v_unit : string;  (** program unit containing the loop *)
  v_index : string;  (** the loop's index variable *)
  v_cls : Ast.loop_class;
  v_what : string;  (** what is wrong *)
}

let issue_to_string i =
  Printf.sprintf "%s: %s %s: %s" i.v_unit (Ast.loop_keyword i.v_cls) i.v_index
    i.v_what

type vctx = {
  syms : Symbols.t;
  interproc : Interproc.t;
  unit_name : string;
  mutable issues : issue list;
}

let lower = String.lowercase_ascii

(* ------------------------------------------------------------------ *)
(* Fact collection (independent of the driver's)                       *)
(* ------------------------------------------------------------------ *)

(* disequality facts implied by a condition: (a, b) meaning a <> b *)
let rec ne_facts pos (c : Ast.expr) : (string * string) list =
  match c with
  | Ast.Bin (Ast.And, a, b) when pos -> ne_facts pos a @ ne_facts pos b
  | Ast.Bin (Ast.Or, a, b) when not pos -> ne_facts pos a @ ne_facts pos b
  | Ast.Bin (Ast.Ne, Ast.Var a, Ast.Var b) when pos -> [ (a, b) ]
  | Ast.Bin (Ast.Eq, Ast.Var a, Ast.Var b) when not pos -> [ (a, b) ]
  | Ast.Bin ((Ast.Lt | Ast.Gt), Ast.Var a, Ast.Var b) when pos -> [ (a, b) ]
  | Ast.Un (Ast.Not, c) -> ne_facts (not pos) c
  | _ -> []

(* facts implied by the loop's own bounds: DO i = x+c, ... with c >= 1
   gives i <> x; DO i = ..., x-c gives i <> x *)
let bound_facts (h : Ast.do_header) : (string * string) list =
  let from_bound e lo_side =
    match Affine.of_expr e with
    | Some a -> (
        match Affine.vars a with
        | [ x ] when Affine.coeff x a = 1 ->
            if
              (lo_side && a.Affine.const >= 1)
              || ((not lo_side) && a.Affine.const <= -1)
            then [ (h.Ast.index, x) ]
            else []
        | _ -> [])
    | None -> []
  in
  if h.Ast.step = None || h.Ast.step = Some (Ast.Int 1) then
    from_bound h.Ast.lo true @ from_bound h.Ast.hi false
  else []

(* ------------------------------------------------------------------ *)
(* Privacy                                                             *)
(* ------------------------------------------------------------------ *)

(* names with per-worker storage inside the loop: the index, loop-local
   declarations, and (recursively) the indices and locals of every nested
   loop — a nested DO index lives in a worker-private cell *)
let private_names (h : Ast.do_header) (body : Ast.stmt list) : SSet.t =
  let of_header acc (hh : Ast.do_header) =
    List.fold_left
      (fun acc d -> SSet.add d.Ast.d_name acc)
      (SSet.add hh.Ast.index acc)
      hh.Ast.locals
  in
  List.fold_left of_header (of_header SSet.empty h) (Loops.inner_loops body)

(* ------------------------------------------------------------------ *)
(* Pattern recognition for accepted shapes                             *)
(* ------------------------------------------------------------------ *)

(* [IF (i .EQ. hi) v = e]: the last-value copy emitted by privatization —
   exactly one iteration executes the write, so it cannot race *)
let is_last_value_guard ~index ~hi (s : Ast.stmt) (v : string) =
  match Ast_utils.strip_labels_stmt s with
  | Ast.If (Ast.Bin (Ast.Eq, Ast.Var i, bound), [ Ast.Assign (Ast.LVar w, _) ], [])
    ->
      i = index && w = v && Ast.equal_expr bound hi
  | _ -> false

(* scalar writes of a statement list, excluding CALL arguments (calls are
   checked separately via their summaries) and nested-DO index updates
   (those cells are worker-private) *)
let scalar_write_sites (body : Ast.stmt list) : (Ast.stmt * string) list =
  let acc = ref [] in
  let rec stmt top s =
    match Ast_utils.strip_labels_stmt s with
    | Ast.Assign (Ast.LVar v, _) -> acc := (top, v) :: !acc
    | Ast.Read ls ->
        List.iter
          (function Ast.LVar v -> acc := (top, v) :: !acc | _ -> ())
          ls
    | Ast.If (_, t, e) ->
        List.iter (stmt top) t;
        List.iter (stmt top) e
    | Ast.Do (_, blk) ->
        List.iter (stmt top) blk.Ast.preamble;
        List.iter (stmt top) blk.Ast.body;
        List.iter (stmt top) blk.Ast.postamble
    | Ast.Where (_, b) -> List.iter (stmt top) b
    | _ -> ()
  in
  List.iter (fun s -> stmt s s) body;
  List.rev !acc

(* variables a top-level statement touches (reads or writes) *)
let stmt_vars (s : Ast.stmt) : SSet.t =
  SSet.union (Ast_utils.writes_of [ s ]) (Ast_utils.reads_of [ s ])

(* ------------------------------------------------------------------ *)
(* Call safety (mirrors the restructurer's interprocedural gate)       *)
(* ------------------------------------------------------------------ *)

let sync_calls = [ "await"; "advance"; "lock"; "unlock" ]

let check_calls vctx issue ~index body =
  let check name args =
    if List.mem (lower name) sync_calls || Ast.is_intrinsic name then ()
    else
      match Interproc.find vctx.interproc name with
      | None -> issue (Printf.sprintf "call %s has no summary" name)
      | Some s ->
          if not s.Interproc.s_pure then
            issue (Printf.sprintf "call %s is not pure" name)
          else
            List.iteri
              (fun k arg ->
                let defs =
                  k < Array.length s.Interproc.s_formal_def
                  && s.Interproc.s_formal_def.(k)
                in
                if defs then
                  match arg with
                  | Ast.Idx (_, subs)
                    when List.exists
                           (fun e -> SSet.mem index (Ast_utils.expr_vars e))
                           subs ->
                      ()
                  | _ ->
                      issue
                        (Printf.sprintf
                           "call %s writes argument %d at a loop-invariant \
                            location"
                           name (k + 1)))
              args
  in
  Ast_utils.fold_stmts
    (fun () s ->
      match s with
      | Ast.CallSt (n, args) -> check n args
      | Ast.Assign (_, e) ->
          Ast_utils.fold_expr
            (fun () e ->
              match e with
              | Ast.Call (n, args) when not (Ast.is_intrinsic n) -> check n args
              | _ -> ())
            () e
      | _ -> ())
    () body

(* ------------------------------------------------------------------ *)
(* The per-loop check                                                  *)
(* ------------------------------------------------------------------ *)

let check_parallel_loop vctx ~facts ~rt_tested (h : Ast.do_header)
    (blk : Ast.block) =
  let body = blk.Ast.body in
  let index = h.Ast.index in
  let issue what =
    let i = { v_unit = vctx.unit_name; v_index = index; v_cls = h.Ast.cls; v_what = what } in
    if not (List.mem i vctx.issues) then vctx.issues <- i :: vctx.issues
  in
  let priv = private_names h body in
  let top = Array.of_list (List.map Ast_utils.strip_labels_stmt body) in

  (* ---- synchronization structure ---- *)
  let await = ref None and advance = ref None in
  Array.iteri
    (fun i s ->
      match s with
      | Ast.CallSt (n, args) when lower n = "await" ->
          if !await = None then await := Some (i, args)
      | Ast.CallSt (n, _) when lower n = "advance" -> advance := Some i
      | _ -> ())
    top;
  let in_sync_region k =
    match (!await, !advance) with
    | Some (a, _), Some d -> a <= k && k <= d
    | _ -> false
  in

  (* ---- scalar discipline ---- *)
  let writes = scalar_write_sites body in
  let reads = Ast_utils.reads_of body in
  let written_scalars =
    List.filter
      (fun (_, v) ->
        (not (SSet.mem v priv))
        && (not (Symbols.is_array vctx.syms v))
        && not (List.mem_assoc v vctx.syms.Symbols.params))
      writes
    |> List.map snd |> List.sort_uniq compare
  in
  List.iter
    (fun v ->
      let sites = List.filter (fun (_, w) -> w = v) writes in
      let all_last_value =
        (not (SSet.mem v reads))
        && List.for_all
             (fun (s, _) -> is_last_value_guard ~index ~hi:h.Ast.hi s v)
             sites
      in
      let all_synchronized =
        Ast.is_doacross h.Ast.cls
        && Array.to_list top
           |> List.mapi (fun k s -> (k, s))
           |> List.for_all (fun (k, s) ->
                  (not (SSet.mem v (stmt_vars s))) || in_sync_region k)
      in
      if not (all_last_value || all_synchronized) then
        issue
          (Printf.sprintf
             "scalar %s is written in the parallel body but not privatized" v))
    written_scalars;

  (* ---- array dependences ---- *)
  let body_guard_facts =
    match List.map Ast_utils.strip_labels_stmt body with
    | [ Ast.If (c, _, []) ]
      when not
             (Ast_utils.fold_expr
                (fun acc e ->
                  acc
                  ||
                  match e with Ast.Idx _ | Ast.Section _ -> true | _ -> false)
                false c) ->
        ne_facts true c
    | _ -> []
  in
  let written = Ast_utils.writes_of body in
  let disequal =
    List.filter
      (fun (a, b) -> (not (SSet.mem a written)) && not (SSet.mem b written))
      (facts @ body_guard_facts @ bound_facts h)
  in
  let inner = List.map (fun hh -> hh.Ast.index) (Loops.inner_loops body) in
  let trip =
    match
      ( Ast_utils.const_eval vctx.syms.Symbols.params h.Ast.lo,
        Ast_utils.const_eval vctx.syms.Symbols.params h.Ast.hi )
    with
    | Some l, Some hi when h.Ast.step = None || h.Ast.step = Some (Ast.Int 1) ->
        Some (hi - l + 1)
    | _ -> None
  in
  let refs =
    Loops.collect_refs body
    |> List.filter (fun r -> not (SSet.mem r.Loops.r_array priv))
  in
  let deps =
    Depend.dependences ~disequal
      ~invariant:(fun v -> not (SSet.mem v written))
      ~env:SMap.empty ~index ~inner ~trip refs
  in
  let carried = Depend.carried deps in
  let excused (d : Depend.dep) =
    (* a two-version loop runs its parallel arm only when the run-time
       test proved the symbolic subscripts independent *)
    rt_tested
    &&
    match d.Depend.d_reason with
    | Depend.Symbolic _ | Depend.Non_affine -> true
    | Depend.Affine | Depend.Scalar -> false
  in
  let carried = List.filter (fun d -> not (excused d)) carried in
  if Ast.is_doacross h.Ast.cls then begin
    if carried <> [] then begin
      let dists =
        List.map
          (fun d ->
            match d.Depend.d_distance with
            | Depend.Dist k -> Some (d, k)
            | Depend.Star ->
                issue
                  (Printf.sprintf
                     "carried %s dependence on %s has unknown distance: no \
                      delay factor can cover it"
                     (Depend.show_kind d.Depend.d_kind)
                     d.Depend.d_array);
                None)
          carried
        |> List.filter_map Fun.id
      in
      match !await with
      | None ->
          issue "carried dependences but no await in the loop body"
      | Some (await_idx, args) -> (
          (match args with
          | [ _; de ] -> (
              match Ast_utils.const_eval [] de with
              | None -> issue "await delay factor is not a constant"
              | Some delay ->
                  List.iter
                    (fun ((d : Depend.dep), k) ->
                      if delay > k then
                        issue
                          (Printf.sprintf
                             "await delay %d exceeds the distance-%d %s \
                              dependence on %s: iterations closer than the \
                              delay are not waited for"
                             delay k
                             (Depend.show_kind d.Depend.d_kind)
                             d.Depend.d_array))
                    dists)
          | _ -> issue "await must have two arguments (sequence, delay)");
          let tops l = List.map (function [] -> 0 | i :: _ -> i) l in
          let first_sink =
            List.fold_left min max_int
              (tops (List.map (fun (d, _) -> d.Depend.d_dst) dists))
          in
          let last_source =
            List.fold_left max 0
              (tops (List.map (fun (d, _) -> d.Depend.d_src) dists))
          in
          if dists <> [] && await_idx > first_sink then
            issue "await is placed after the first dependence sink";
          match !advance with
          | None -> issue "carried dependences but no advance in the loop body"
          | Some adv_idx ->
              if dists <> [] && adv_idx < last_source then
                issue "advance is placed before the last dependence source")
    end
  end
  else
    List.iter
      (fun (d : Depend.dep) ->
        issue
          (Printf.sprintf
             "unsynchronized loop-carried %s dependence on %s (distance %s, %s)"
             (Depend.show_kind d.Depend.d_kind)
             d.Depend.d_array
             (Depend.show_distance d.Depend.d_distance)
             (Depend.show_reason d.Depend.d_reason)))
      carried;

  (* ---- preamble / postamble discipline ---- *)
  let check_once_region label stmts =
    let depth = ref 0 in
    List.iter
      (fun s ->
        match Ast_utils.strip_labels_stmt s with
        | Ast.CallSt (n, _) when lower n = "lock" -> incr depth
        | Ast.CallSt (n, _) when lower n = "unlock" -> decr depth
        | s ->
            if !depth = 0 then
              SSet.iter
                (fun v ->
                  if
                    (not (SSet.mem v priv))
                    && not (List.mem_assoc v vctx.syms.Symbols.params)
                  then
                    issue
                      (Printf.sprintf
                         "%s writes shared %s outside a lock/unlock critical \
                          section"
                         label v))
                (SSet.diff (Ast_utils.writes_of [ s ])
                   (* per-worker merge-loop indices are private *)
                   (SSet.of_list
                      (List.map
                         (fun (hh : Ast.do_header) -> hh.Ast.index)
                         (Loops.inner_loops [ s ])))))
      stmts
  in
  check_once_region "preamble" blk.Ast.preamble;
  check_once_region "postamble" blk.Ast.postamble;

  (* ---- calls ---- *)
  check_calls vctx issue ~index body

(* ------------------------------------------------------------------ *)
(* Statement walk                                                      *)
(* ------------------------------------------------------------------ *)

(* [IF (cond) <parallel loop over i> ELSE <serial DO over i>]: the
   two-version shape emitted for run-time dependence tests — the parallel
   arm only runs when the test discharged the symbolic dependences *)
let serial_do_indices stmts =
  List.filter_map
    (fun s ->
      match Ast_utils.strip_labels_stmt s with
      | Ast.Do (hh, _) when hh.Ast.cls = Ast.Seq -> Some hh.Ast.index
      | _ -> None)
    stmts

let rec check_stmts vctx ~facts stmts =
  List.iter (check_stmt vctx ~facts) stmts

and check_stmt vctx ~facts s =
  match Ast_utils.strip_labels_stmt s with
  | Ast.Do (h, blk) when h.Ast.cls <> Ast.Seq ->
      check_parallel_loop vctx ~facts ~rt_tested:false h blk;
      check_stmts vctx ~facts:(facts @ bound_facts h) blk.Ast.body
  | Ast.Do (h, blk) ->
      check_stmts vctx ~facts:(facts @ bound_facts h) blk.Ast.body
  | Ast.If (c, thn, els) ->
      let serial_twins = serial_do_indices els in
      let pos_facts = facts @ ne_facts true c in
      List.iter
        (fun s ->
          match Ast_utils.strip_labels_stmt s with
          | Ast.Do (h, blk)
            when h.Ast.cls <> Ast.Seq && List.mem h.Ast.index serial_twins ->
              check_parallel_loop vctx ~facts:pos_facts ~rt_tested:true h blk;
              check_stmts vctx
                ~facts:(pos_facts @ bound_facts h)
                blk.Ast.body
          | _ -> check_stmt vctx ~facts:pos_facts s)
        thn;
      check_stmts vctx ~facts:(facts @ ne_facts false c) els
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let check_stmts_in ~(syms : Symbols.t) ~(interproc : Interproc.t)
    ~(unit_name : string) ?(facts = []) (stmts : Ast.stmt list) : issue list =
  let vctx = { syms; interproc; unit_name; issues = [] } in
  check_stmts vctx ~facts stmts;
  List.rev vctx.issues

let check_unit interproc (u : Ast.punit) : issue list =
  let vctx =
    {
      syms = Symbols.of_unit u;
      interproc;
      unit_name = u.Ast.u_name;
      issues = [];
    }
  in
  check_stmts vctx ~facts:[] u.Ast.u_body;
  List.rev vctx.issues

let check_program (prog : Ast.program) : issue list =
  let interproc = Interproc.analyze prog in
  List.concat_map (check_unit interproc) prog

let check_source (text : string) : (issue list, string) result =
  match Parser.parse_program text with
  | prog -> Ok (check_program prog)
  | exception Parser.Error (msg, line) ->
      Error (Printf.sprintf "line %d: %s" line msg)

(** Print → reparse → check: the verdict applies to the emitted text. *)
let reverify (prog : Ast.program) : (issue list, string) result =
  check_source (Printer.program_to_string prog)

(** Target-aware variant of {!check_source}: Cedar text parses directly;
    OpenMP text first re-reads through the directive lift
    ({!Codegen.Openmp.lift_source}), so the same parser and race checks
    apply to what the OpenMP backend actually emitted. *)
let check_output ~(target : Codegen.Target.t) (text : string) :
    (issue list, string) result =
  match target with
  | Codegen.Target.Cedar -> check_source text
  | Codegen.Target.Openmp -> (
      match Codegen.Openmp.lift_source text with
      | Ok cedar -> check_source cedar
      | Error msg -> Error ("openmp lift: " ^ msg))

(** Emit for [target] → (lift →) reparse → check. *)
let reverify_target ~(target : Codegen.Target.t) (prog : Ast.program) :
    (issue list, string) result =
  check_output ~target (Codegen.Emit.program_to_string ~target prog)

(* ------------------------------------------------------------------ *)
(* Dynamic check                                                       *)
(* ------------------------------------------------------------------ *)

(** Execute the program with the race detector armed and return any
    dynamic races observed (see {!Interp.Race}).  Also returns the run's
    PRINT output so callers can cross-check results. *)
let check_dynamic ?(input = []) ~(cfg : Machine.Config.t) (prog : Ast.program)
    : Interp.Race.issue list * string =
  let det = Interp.Race.create () in
  let r = Interp.Exec.run ~input ~detector:det ~cfg prog in
  (Interp.Race.issues det, r.Interp.Exec.output)
