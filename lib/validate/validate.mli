(** Independent re-verification of Cedar Fortran parallel loops: a static
    checker that re-runs dependence analysis on every concurrent loop of
    an (emitted) program and flags anything that could race, plus a
    dynamic harness around the interpreter's race detector.

    The static checker accepts the synchronization and privatization
    patterns the restructurer emits — loop-local declarations,
    [IF (i .EQ. hi)] last-value copies, lock-bracketed reduction merges
    in preambles/postambles, await/advance cascades whose delay factor
    covers every carried distance, and two-version loops under a run-time
    dependence test — and reports everything else as an {!issue}. *)

type issue = {
  v_unit : string;  (** program unit containing the loop *)
  v_index : string;  (** the loop's index variable *)
  v_cls : Fortran.Ast.loop_class;
  v_what : string;  (** what is wrong *)
}

val issue_to_string : issue -> string

val check_program : Fortran.Ast.program -> issue list
(** Statically check every parallel loop of every unit. *)

val check_unit : Analysis.Interproc.t -> Fortran.Ast.punit -> issue list
(** Check one unit against precomputed interprocedural summaries. *)

val check_stmts_in :
  syms:Fortran.Symbols.t ->
  interproc:Analysis.Interproc.t ->
  unit_name:string ->
  ?facts:(string * string) list ->
  Fortran.Ast.stmt list ->
  issue list
(** Check a statement list in a given unit context — used by the
    restructurer driver to re-verify each loop it just transformed.
    [facts] are disequality pairs known from enclosing guards. *)

val check_source : string -> (issue list, string) result
(** Parse Cedar Fortran text and check it; [Error] on a parse failure. *)

val reverify : Fortran.Ast.program -> (issue list, string) result
(** Print the program and re-check the reparsed text — validates what is
    actually shipped, not the in-memory tree.  [Error] means the emitted
    text does not even reparse. *)

val check_output :
  target:Codegen.Target.t -> string -> (issue list, string) result
(** Target-aware {!check_source}: Cedar text parses directly; OpenMP
    text first re-reads through {!Codegen.Openmp.lift_source}, so the
    same parser and race checks apply to the emitted directives. *)

val reverify_target :
  target:Codegen.Target.t ->
  Fortran.Ast.program ->
  (issue list, string) result
(** Emit for [target] → (lift →) reparse → check. *)

val check_dynamic :
  ?input:float list ->
  cfg:Machine.Config.t ->
  Fortran.Ast.program ->
  Interp.Race.issue list * string
(** Run the program with the dynamic race detector armed; returns the
    races observed and the run's PRINT output. *)
