(** The Cedar Fortran executor: cycle-level execution of programs on the
    simulated machine.  Parallel loops self-schedule across simulated
    processors (each a DES fiber), cascade synchronization and locks
    block and wake fibers, memory references charge latencies by
    placement.  Supports the full Cedar Fortran runtime interface:
    [await]/[advance], [lock]/[unlock], [post]/[wait]/[clearevent],
    [ctskstart]/[mtskstart]/[tskwait], and the [cedar_*] library. *)

exception Stop_program
exception Return_unit

type result = {
  cycles : float;  (** simulated run time *)
  output : string;  (** everything PRINTed *)
  global_words : float;  (** traffic counters *)
  cluster_words : float;
  busy : float;  (** Σ busy cycles across all processors *)
}

val run :
  ?input:float list ->
  ?detector:Race.t ->
  cfg:Machine.Config.t ->
  Fortran.Ast.program ->
  result
(** Execute the PROGRAM unit; [input] feeds READ statements.  When
    [detector] is given, parallel loop bodies run with per-location
    access logging and data races between iterations are recorded in it
    (a pure observer: cycle counts and results are unchanged).
    @raise Store.Runtime_error on invalid programs (bad subscripts,
    unknown routines, executed GOTOs)
    @raise Machine.Sim.Deadlock if synchronization deadlocks *)
