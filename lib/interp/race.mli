(** Dynamic data-race detection for parallel Cedar Fortran loops.

    While a monitored parallel loop executes, every read and write the
    iteration bodies make to non-private storage is logged per memory
    location (storage id + element offset), tagged with the iteration
    number and the synchronization state at the time of the access:

    - for DOACROSS loops, whether the access happened after the
      iteration's [await] (and with what delay factor) and whether it
      happened after the iteration's [advance];
    - the set of locks held (unordered critical sections).

    Two accesses to the same location from distinct iterations, at
    least one a write, form a race unless the cascade orders them —
    iteration [j] is ordered after an access of iteration [i < j] iff
    the access of [i] precedes [i]'s [advance] and the access of [j]
    follows [j]'s [await(d)] with [j - d >= i] (the cascade completes
    iterations in order, so awaiting [j - d] also awaits [i]) — or both
    accesses hold a common lock (mutual exclusion: no data race, though
    the outcome may still be order-dependent).

    The detector is a pure observer: it charges no cycles and never
    changes scheduling, so a monitored run computes exactly what an
    unmonitored run computes. *)

type access = ARead | AWrite

val show_access : access -> string

type issue = {
  i_unit : string;  (** reserved; the executor does not track unit names *)
  i_loop : string;  (** index variable of the monitored loop *)
  i_cls : Fortran.Ast.loop_class;
  i_location : string;  (** e.g. ["a(7)"] or ["t"] *)
  i_iter_a : int;
  i_kind_a : access;
  i_iter_b : int;
  i_kind_b : access;
}

val issue_to_string : issue -> string

type t
(** A detector: an issue log shared by every loop it monitors. *)

val create : ?limit:int -> unit -> t
(** A fresh detector keeping at most [limit] (default 64) issues;
    further ones are counted but dropped. *)

val issues : t -> issue list
(** Issues found so far, oldest first. *)

type state
(** Per-worker, per-iteration synchronization state. *)

val fresh_state : int -> state
(** State for iteration [i]: nothing awaited, not advanced, no locks. *)

val note_await : state -> int -> unit
(** The iteration passed an [await] with the given delay factor. *)

val note_advance : state -> unit
val note_lock : state -> int -> unit
val note_unlock : state -> int -> unit

type loopctx
(** One monitored parallel loop: the per-location access log. *)

val enter_loop :
  t -> index:string -> cls:Fortran.Ast.loop_class -> loopctx

val note :
  loopctx ->
  state ->
  access ->
  id:int ->
  off:int ->
  loc:(unit -> string) ->
  unit
(** Log one access to location (storage id [id], element offset [off]).
    [loc] renders the location lazily — only evaluated when a race is
    actually found. *)
