(** The Cedar Fortran executor: runs programs on the simulated machine.

    Semantics and performance together: every fiber of the DES is one
    Cedar processor's activity; parallel loops go through
    {!Machine.Microtask}, cascade synchronization and locks through
    {!Machine.Sync}, memory references charge latencies by placement
    through {!Machine.Memory}.  Vector-section statements evaluate whole
    strips at vector cost.  The executor is used by the examples, the
    correctness tests (serial vs restructured results) and to validate
    the analytic performance model at small sizes. *)

open Fortran
module Mach = Machine

exception Stop_program
exception Return_unit

type ctx = {
  sim : Mach.Sim.t;
  mem : Mach.Memory.t;
  cfg : Mach.Config.t;
  prog : Ast.program;
  commons : (string, Store.entry) Hashtbl.t;
  locks : (int, Mach.Sync.Lock.t) Hashtbl.t;
  events : (int, Mach.Sync.Event.t) Hashtbl.t;  (** post/wait events *)
  mutable tasks_outstanding : int;  (** ctskstart/mtskstart threads *)
  mutable task_done : Mach.Sync.Event.t option;  (** armed by tskwait *)
  output : Buffer.t;
  mutable input : float list;
  mutable charging : bool;  (** false: pure evaluation (e.g. decl dims) *)
  detector : Race.t option;  (** log parallel-loop accesses when set *)
}

(** Per-fiber thread context: overlay scopes for loop-local data, the
    processor/cluster identity, and the innermost DOACROSS cascade. *)
type tctx = {
  c : ctx;
  frame : Store.frame;
  mutable overlays : (string, Store.entry) Hashtbl.t list;
  cluster : int;
  mutable pending : float;  (** accumulated cycles not yet delayed *)
  mutable doacross : (Mach.Sync.Cascade.t * int) option;
  mutable rmon : (Race.loopctx * Race.state) option;
      (** innermost monitored parallel loop + this iteration's sync state *)
}

(* ------------------------------------------------------------------ *)
(* Race-detector hooks (pure observers: no cycles, no scheduling)      *)
(* ------------------------------------------------------------------ *)

let monitor_scalar t kind name placement id =
  match t.rmon with
  | Some (lc, st) when placement <> Mach.Memory.Private ->
      Race.note lc st kind ~id ~off:0 ~loc:(fun () -> name)
  | _ -> ()

let monitor_elem t kind (arr : Store.arr) is =
  match t.rmon with
  | Some (lc, st) when arr.Store.a_placement <> Mach.Memory.Private ->
      Race.note lc st kind ~id:arr.Store.a_id ~off:(Store.linear_index arr is)
        ~loc:(fun () -> Store.ref_str arr.Store.a_name is)
  | _ -> ()

let charge t cycles = if t.c.charging then t.pending <- t.pending +. cycles

let flush t =
  if t.pending > 0.0 then begin
    Mach.Sim.delay t.c.sim t.pending;
    t.pending <- 0.0
  end

(* ------------------------------------------------------------------ *)
(* Variable resolution                                                 *)
(* ------------------------------------------------------------------ *)

let rec lookup_overlays name = function
  | [] -> None
  | o :: rest -> (
      match Hashtbl.find_opt o name with
      | Some e -> Some e
      | None -> lookup_overlays name rest)

let placement_of (t : tctx) name : Mach.Memory.placement =
  match Symbols.lookup t.frame.Store.f_syms name with
  | Some s ->
      if s.Symbols.s_vis = Ast.Global || s.Symbols.s_process_common then
        Mach.Memory.Global_mem
      else Mach.Memory.Cluster_mem
  | None -> Mach.Memory.Cluster_mem

let rec find_entry (t : tctx) name : Store.entry =
  match lookup_overlays name t.overlays with
  | Some e -> e
  | None -> (
      match Hashtbl.find_opt t.frame.Store.f_vars name with
      | Some e -> e
      | None -> (
          (* common variables shared across units by name *)
          match Symbols.lookup t.frame.Store.f_syms name with
          | Some s when s.Symbols.s_common <> None -> (
              match Hashtbl.find_opt t.c.commons name with
              | Some e ->
                  Hashtbl.replace t.frame.Store.f_vars name e;
                  e
              | None ->
                  let e = alloc_entry t name in
                  Hashtbl.replace t.c.commons name e;
                  Hashtbl.replace t.frame.Store.f_vars name e;
                  e)
          | _ ->
              let e = alloc_entry t name in
              Hashtbl.replace t.frame.Store.f_vars name e;
              e))

and alloc_entry (t : tctx) name : Store.entry =
  let placement = placement_of t name in
  match Symbols.lookup t.frame.Store.f_syms name with
  | Some s when s.Symbols.s_dims <> [] ->
      let dims =
        List.map
          (fun (lo, hi) ->
            let lo = eval_int t lo in
            let hi = eval_int t hi in
            (lo, hi - lo + 1))
          s.Symbols.s_dims
      in
      Store.Array (Store.make_array ~placement ~name dims)
  | _ -> Store.scalar ~placement 0.0

(* ------------------------------------------------------------------ *)
(* Scalar expression evaluation                                        *)
(* ------------------------------------------------------------------ *)

and eval_int t e =
  let v = eval t e in
  let r = Float.round v in
  if Float.abs (v -. r) > 1e-6 then
    Store.error "expected integer, got %g (%s)" v (Printer.expr_str e);
  int_of_float r

and eval (t : tctx) (e : Ast.expr) : float =
  match e with
  | Ast.Int n -> float_of_int n
  | Ast.Num f -> f
  | Ast.Bool b -> if b then 1.0 else 0.0
  | Ast.Str _ -> 0.0
  | Ast.Var v -> (
      match List.assoc_opt v t.frame.Store.f_syms.Symbols.params with
      | Some e -> eval t e
      | None -> (
          match find_entry t v with
          | Store.Scalar s ->
              charge t
                (match s.placement with
                | Mach.Memory.Private -> t.c.cfg.Mach.Config.cache_hit
                | Mach.Memory.Cluster_mem -> t.c.cfg.Mach.Config.cluster_scalar
                | Mach.Memory.Global_mem -> t.c.cfg.Mach.Config.global_scalar);
              monitor_scalar t Race.ARead v s.placement s.id;
              s.v
          | Store.Array _ -> Store.error "array %s used as scalar" v))
  | Ast.Idx (a, subs) -> (
      match find_entry t a with
      | Store.Array arr ->
          let is = List.map (eval_int t) subs in
          charge t
            (match arr.Store.a_placement with
            | Mach.Memory.Private -> t.c.cfg.Mach.Config.cache_hit
            | Mach.Memory.Cluster_mem -> t.c.cfg.Mach.Config.cluster_scalar
            | Mach.Memory.Global_mem -> t.c.cfg.Mach.Config.global_scalar);
          monitor_elem t Race.ARead arr is;
          Store.get_elem arr is
      | Store.Scalar _ -> Store.error "scalar %s subscripted" a)
  | Ast.Bin (op, a, b) -> (
      let x = eval t a in
      match op with
      | Ast.And -> if x = 0.0 then 0.0 else eval t b
      | Ast.Or -> if x <> 0.0 then 1.0 else eval t b
      | _ -> (
          let y = eval t b in
          charge t t.c.cfg.Mach.Config.scalar_op;
          match op with
          | Ast.Add -> x +. y
          | Ast.Sub -> x -. y
          | Ast.Mul -> x *. y
          | Ast.Div ->
              (* Fortran: integer/integer truncates *)
              if
                Float.is_integer x && Float.is_integer y
                && is_integer_expr t a && is_integer_expr t b
              then Float.of_int (int_of_float x / int_of_float y)
              else x /. y
          | Ast.Pow ->
              if Float.is_integer y then
                let rec p acc n = if n = 0 then acc else p (acc *. x) (n - 1) in
                if y >= 0.0 then p 1.0 (int_of_float y)
                else 1.0 /. p 1.0 (-int_of_float y)
              else Float.pow x y
          | Ast.Eq -> if x = y then 1.0 else 0.0
          | Ast.Ne -> if x <> y then 1.0 else 0.0
          | Ast.Lt -> if x < y then 1.0 else 0.0
          | Ast.Le -> if x <= y then 1.0 else 0.0
          | Ast.Gt -> if x > y then 1.0 else 0.0
          | Ast.Ge -> if x >= y then 1.0 else 0.0
          | Ast.And | Ast.Or -> assert false))
  | Ast.Un (Ast.Neg, a) -> -.eval t a
  | Ast.Un (Ast.Not, a) -> if eval t a = 0.0 then 1.0 else 0.0
  | Ast.Call (f, args) -> eval_call t f args
  | Ast.Section _ -> Store.error "vector section in scalar context"

and is_integer_expr t e =
  (* static type of the expression, integer iff all leaves integer *)
  match e with
  | Ast.Int _ -> true
  | Ast.Num _ -> false
  | Ast.Var v | Ast.Idx (v, _) ->
      Symbols.dtype_of t.frame.Store.f_syms v = Ast.Integer
  | Ast.Bin ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow), a, b) ->
      is_integer_expr t a && is_integer_expr t b
  | Ast.Un (_, a) -> is_integer_expr t a
  | Ast.Call (f, _) ->
      List.mem (String.lowercase_ascii f) [ "int"; "nint"; "mod"; "min"; "max" ]
  | _ -> false

and eval_call t f args =
  let fl = String.lowercase_ascii f in
  match fl with
  | "sqrt" | "exp" | "log" | "sin" | "cos" | "tan" | "atan" ->
      charge t t.c.cfg.Mach.Config.intrinsic_op;
      let x = eval t (List.hd args) in
      (match fl with
      | "sqrt" -> sqrt x
      | "exp" -> exp x
      | "log" -> log x
      | "sin" -> sin x
      | "cos" -> cos x
      | "tan" -> tan x
      | _ -> atan x)
  | "abs" ->
      charge t t.c.cfg.Mach.Config.scalar_op;
      Float.abs (eval t (List.hd args))
  | "min" | "max" ->
      charge t t.c.cfg.Mach.Config.scalar_op;
      let vs = List.map (eval t) args in
      List.fold_left (if fl = "min" then Float.min else Float.max)
        (List.hd vs) (List.tl vs)
  | "mod" -> (
      charge t t.c.cfg.Mach.Config.scalar_op;
      match List.map (eval t) args with
      | [ a; b ] ->
          if Float.is_integer a && Float.is_integer b then
            float_of_int (int_of_float a mod int_of_float b)
          else Float.rem a b
      | _ -> Store.error "mod arity")
  | "int" -> Float.of_int (int_of_float (eval t (List.hd args)))
  | "nint" -> Float.round (eval t (List.hd args))
  | "float" | "real" | "dble" -> eval t (List.hd args)
  | "sign" -> (
      match List.map (eval t) args with
      | [ a; b ] -> if b >= 0.0 then Float.abs a else -.Float.abs a
      | _ -> Store.error "sign arity")
  | "cedar_dotp" -> Runtime_lib.dotp t.c.sim t.c.cfg t.c.mem (array_arg t args 0)
                      (array_arg t args 1) (eval_int t (List.nth args 2))
                      (eval_int t (List.nth args 3))
  | "cedar_maxval" | "cedar_minval" ->
      Runtime_lib.minmax t.c.sim t.c.cfg t.c.mem ~is_max:(fl = "cedar_maxval")
        (array_arg t args 0)
        (eval_int t (List.nth args 1))
        (eval_int t (List.nth args 2))
  | "sum" -> (
      (* fortran90 SUM over a section *)
      match args with
      | [ arg ] ->
          let v = eval_vec t arg in
          charge t
            (t.c.cfg.Mach.Config.vector_startup
            +. (t.c.cfg.Mach.Config.vector_op *. float_of_int (Array.length v)));
          Array.fold_left ( +. ) 0.0 v
      | _ -> Store.error "sum arity")
  | "maxval" | "minval" -> (
      match args with
      | [ arg ] ->
          let v = eval_vec t arg in
          if Array.length v = 0 then Store.error "%s of empty section" fl;
          charge t
            (t.c.cfg.Mach.Config.vector_startup
            +. (t.c.cfg.Mach.Config.vector_op *. float_of_int (Array.length v)));
          Array.fold_left
            (if fl = "maxval" then Float.max else Float.min)
            v.(0) v
      | _ -> Store.error "%s arity" fl)
  | "dotproduct" -> (
      match args with
      | [ a; b ] ->
          let va = eval_vec t a and vb = eval_vec t b in
          if Array.length va <> Array.length vb then
            Store.error "dotproduct length mismatch";
          charge t
            (t.c.cfg.Mach.Config.vector_startup
            +. (2.0 *. t.c.cfg.Mach.Config.vector_op *. float_of_int (Array.length va)));
          let s = ref 0.0 in
          Array.iteri (fun i x -> s := !s +. (x *. vb.(i))) va;
          !s
      | _ -> Store.error "dotproduct arity")
  | _ -> (
      (* user-defined function *)
      match find_unit t.c f with
      | Some u -> call_unit t u args ~want_result:true
      | None -> Store.error "unknown function %s" f)

and array_arg t args k =
  match List.nth_opt args k with
  | Some (Ast.Var v) -> (
      match find_entry t v with
      | Store.Array a -> a
      | Store.Scalar _ -> Store.error "%s: expected array" v)
  | _ -> Store.error "expected array argument"

(* ------------------------------------------------------------------ *)
(* Vector evaluation                                                   *)
(* ------------------------------------------------------------------ *)

(* expand a section into the list of element index vectors, and charge a
   vector stream; returns values *)
and section_indices t (arr : Store.arr) (dims : Ast.expr Ast.section_dim list) :
    int list list =
  (* per-dimension index lists *)
  let per_dim =
    List.mapi
      (fun k d ->
        match d with
        | Ast.Elem e -> [ eval_int t e ]
        | Ast.Range (lo, hi, step) ->
            let dlo, dext = arr.Store.a_dims.(k) in
            let lo = match lo with Some e -> eval_int t e | None -> dlo in
            let hi =
              match hi with Some e -> eval_int t e | None -> dlo + dext - 1
            in
            let step = match step with Some e -> eval_int t e | None -> 1 in
            if step = 0 then Store.error "zero section stride";
            let rec gen i acc =
              if (step > 0 && i > hi) || (step < 0 && i < hi) then List.rev acc
              else gen (i + step) (i :: acc)
            in
            gen lo [])
      dims
  in
  (* cartesian product, first dimension fastest (column major order) *)
  let rec cart = function
    | [] -> [ [] ]
    | d :: rest ->
        let tails = cart rest in
        List.concat_map (fun tl -> List.map (fun i -> i :: tl) d) tails
  in
  cart per_dim

and vector_charge t (placement : Mach.Memory.placement) n =
  let cfg = t.c.cfg in
  Mach.Memory.count t.c.mem placement (float_of_int n);
  charge t
    (match placement with
    | Mach.Memory.Private ->
        cfg.Mach.Config.vector_startup
        +. (cfg.Mach.Config.cache_hit *. float_of_int n)
    | Mach.Memory.Cluster_mem -> Mach.Config.vector_stream_cost cfg ~global:false n
    | Mach.Memory.Global_mem -> Mach.Config.vector_stream_cost cfg ~global:true n)

(** Evaluate an expression in vector context: returns an array of values.
    Scalars broadcast (length -1 sentinel handled by caller via [length]). *)
and eval_vec (t : tctx) (e : Ast.expr) : float array =
  match e with
  | Ast.Call (f, [ lo; hi ]) when String.lowercase_ascii f = "cedar_iota" ->
      let lo = eval_int t lo and hi = eval_int t hi in
      let n = max 0 (hi - lo + 1) in
      charge t (t.c.cfg.Mach.Config.vector_op *. float_of_int n);
      Array.init n (fun k -> float_of_int (lo + k))
  | Ast.Section (a, dims) -> (
      match find_entry t a with
      | Store.Array arr ->
          let idxs = section_indices t arr dims in
          vector_charge t arr.Store.a_placement (List.length idxs);
          if t.rmon <> None then
            List.iter (monitor_elem t Race.ARead arr) idxs;
          Array.of_list (List.map (Store.get_elem arr) idxs)
      | Store.Scalar _ -> Store.error "scalar %s sectioned" a)
  | Ast.Bin (op, a, b) ->
      let va = eval_vec_or_scalar t a and vb = eval_vec_or_scalar t b in
      combine_vec t op va vb
  | Ast.Un (Ast.Neg, a) -> (
      match eval_vec_or_scalar t a with
      | `Vec v ->
          charge t (t.c.cfg.Mach.Config.vector_op *. float_of_int (Array.length v));
          Array.map (fun x -> -.x) v
      | `Scalar x -> [| -.x |])
  | Ast.Call (f, args)
    when Ast.is_intrinsic f
         && not
              (List.mem
                 (String.lowercase_ascii f)
                 [ "sum"; "dotproduct"; "maxval"; "minval" ]
              || String.length f > 6
                 && String.lowercase_ascii (String.sub f 0 6) = "cedar_") ->
      (* elementwise intrinsic over vector operands (with broadcast) *)
      let vs = List.map (eval_vec_or_scalar t) args in
      let n =
        List.fold_left
          (fun acc v ->
            match v with `Vec a -> max acc (Array.length a) | `Scalar _ -> acc)
          1 vs
      in
      charge t (2.0 *. t.c.cfg.Mach.Config.vector_op *. float_of_int n);
      Array.init n (fun k ->
          let elem_args =
            List.map
              (fun v ->
                match v with
                | `Vec a ->
                    if Array.length a <> n then
                      Store.error "vector intrinsic length mismatch in %s" f;
                    Ast.Num a.(k)
                | `Scalar x -> Ast.Num x)
              vs
          in
          let saved = t.c.charging in
          t.c.charging <- false;
          let r = eval t (Ast.Call (f, elem_args)) in
          t.c.charging <- saved;
          r)
  | e -> [| eval t e |]

and eval_vec_or_scalar t e : [ `Vec of float array | `Scalar of float ] =
  match e with
  | Ast.Section _ -> `Vec (eval_vec t e)
  | Ast.Bin _ | Ast.Un _ | Ast.Call _ ->
      if expr_has_section e then `Vec (eval_vec t e) else `Scalar (eval t e)
  | _ -> `Scalar (eval t e)

and expr_has_section e =
  Ast_utils.fold_expr
    (fun acc e ->
      acc
      ||
      match e with
      | Ast.Section _ -> true
      | Ast.Call (f, _) -> String.lowercase_ascii f = "cedar_iota"
      | _ -> false)
    false e

and combine_vec t op va vb : float array =
  let apply x y =
    match op with
    | Ast.Add -> x +. y
    | Ast.Sub -> x -. y
    | Ast.Mul -> x *. y
    | Ast.Div -> x /. y
    | Ast.Pow -> Float.pow x y
    | Ast.Eq -> if x = y then 1.0 else 0.0
    | Ast.Ne -> if x <> y then 1.0 else 0.0
    | Ast.Lt -> if x < y then 1.0 else 0.0
    | Ast.Le -> if x <= y then 1.0 else 0.0
    | Ast.Gt -> if x > y then 1.0 else 0.0
    | Ast.Ge -> if x >= y then 1.0 else 0.0
    | Ast.And -> if x <> 0.0 && y <> 0.0 then 1.0 else 0.0
    | Ast.Or -> if x <> 0.0 || y <> 0.0 then 1.0 else 0.0
  in
  match (va, vb) with
  | `Vec a, `Vec b ->
      if Array.length a <> Array.length b then
        Store.error "vector length mismatch %d vs %d" (Array.length a)
          (Array.length b);
      charge t (t.c.cfg.Mach.Config.vector_op *. float_of_int (Array.length a));
      Array.mapi (fun i x -> apply x b.(i)) a
  | `Vec a, `Scalar y ->
      charge t (t.c.cfg.Mach.Config.vector_op *. float_of_int (Array.length a));
      Array.map (fun x -> apply x y) a
  | `Scalar x, `Vec b ->
      charge t (t.c.cfg.Mach.Config.vector_op *. float_of_int (Array.length b));
      Array.map (fun y -> apply x y) b
  | `Scalar x, `Scalar y -> [| apply x y |]

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and assign_scalar t (l : Ast.lhs) (v : float) =
  match l with
  | Ast.LVar name -> (
      match find_entry t name with
      | Store.Scalar s ->
          charge t
            (match s.placement with
            | Mach.Memory.Private -> t.c.cfg.Mach.Config.cache_hit
            | Mach.Memory.Cluster_mem -> t.c.cfg.Mach.Config.cluster_scalar
            | Mach.Memory.Global_mem -> t.c.cfg.Mach.Config.global_scalar);
          monitor_scalar t Race.AWrite name s.placement s.id;
          s.v <- v
      | Store.Array _ -> Store.error "array %s assigned as scalar" name)
  | Ast.LIdx (name, subs) -> (
      match find_entry t name with
      | Store.Array arr ->
          let is = List.map (eval_int t) subs in
          charge t
            (match arr.Store.a_placement with
            | Mach.Memory.Private -> t.c.cfg.Mach.Config.cache_hit
            | Mach.Memory.Cluster_mem -> t.c.cfg.Mach.Config.cluster_scalar
            | Mach.Memory.Global_mem -> t.c.cfg.Mach.Config.global_scalar);
          monitor_elem t Race.AWrite arr is;
          Store.set_elem arr is v
      | Store.Scalar _ -> Store.error "scalar %s subscripted in assignment" name)
  | Ast.LSection _ -> Store.error "section assigned a scalar"

and exec_stmt (t : tctx) (s : Ast.stmt) : unit =
  (match s with
  | Ast.Assign (Ast.LSection (a, dims), rhs) -> (
      (* vector assignment *)
      match find_entry t a with
      | Store.Array arr -> (
          let idxs = section_indices t arr dims in
          let n = List.length idxs in
          vector_charge t arr.Store.a_placement n;
          if t.rmon <> None then
            List.iter (monitor_elem t Race.AWrite arr) idxs;
          match eval_vec_or_scalar t rhs with
          | `Vec v ->
              if Array.length v <> n then
                Store.error "vector assignment length mismatch %d vs %d"
                  (Array.length v) n;
              List.iteri (fun k is -> Store.set_elem arr is v.(k)) idxs
          | `Scalar x -> List.iter (fun is -> Store.set_elem arr is x) idxs)
      | Store.Scalar _ -> Store.error "scalar %s sectioned" a)
  | Ast.Assign (l, rhs) ->
      if expr_has_section rhs then
        match eval_vec t rhs with
        | [| v |] -> assign_scalar t l v
        | _ -> Store.error "vector value assigned to scalar"
      else assign_scalar t l (eval t rhs)
  | Ast.If (c, th, el) ->
      charge t t.c.cfg.Mach.Config.scalar_op;
      if eval t c <> 0.0 then exec_stmts t th else exec_stmts t el
  | Ast.Where (mask, body) ->
      (* masked vector assignments; a scalar mask broadcasts *)
      let mv = eval_vec t mask in
      let mv =
        if Array.length mv = 1 then
          (* broadcast to the first assignment's length *)
          let n =
            List.fold_left
              (fun acc s ->
                match Ast_utils.strip_labels_stmt s with
                | Ast.Assign (Ast.LSection (a, dims), _) -> (
                    match find_entry t a with
                    | Store.Array arr ->
                        max acc (List.length (section_indices t arr dims))
                    | Store.Scalar _ -> acc)
                | _ -> acc)
              1 body
          in
          Array.make n mv.(0)
        else mv
      in
      List.iter
        (fun s ->
          match Ast_utils.strip_labels_stmt s with
          | Ast.Assign (Ast.LSection (a, dims), rhs) -> (
              match find_entry t a with
              | Store.Array arr -> (
                  let idxs = section_indices t arr dims in
                  let n = List.length idxs in
                  if Array.length mv <> n then
                    Store.error "WHERE mask length mismatch";
                  vector_charge t arr.Store.a_placement n;
                  if t.rmon <> None then
                    List.iteri
                      (fun k is ->
                        if mv.(k) <> 0.0 then monitor_elem t Race.AWrite arr is)
                      idxs;
                  match eval_vec_or_scalar t rhs with
                  | `Vec v ->
                      List.iteri
                        (fun k is ->
                          if mv.(k) <> 0.0 then Store.set_elem arr is v.(k))
                        idxs
                  | `Scalar x ->
                      List.iteri
                        (fun k is -> if mv.(k) <> 0.0 then Store.set_elem arr is x)
                        idxs)
              | Store.Scalar _ -> Store.error "scalar sectioned in WHERE")
          | _ -> Store.error "non-vector statement under WHERE")
        body
  | Ast.Do (h, blk) -> exec_do t h blk
  | Ast.CallSt (name, args) -> exec_call t name args
  | Ast.Return -> raise Return_unit
  | Ast.Stop -> raise Stop_program
  | Ast.Continue -> ()
  | Ast.Goto _ -> Store.error "GOTO is not executable in this interpreter"
  | Ast.Labeled (_, s) -> exec_stmt t s
  | Ast.Print args ->
      List.iter
        (fun e ->
          match e with
          | Ast.Str s -> Buffer.add_string t.c.output (s ^ " ")
          | e -> Buffer.add_string t.c.output (Printf.sprintf "%.6g " (eval t e)))
        args;
      Buffer.add_char t.c.output '\n'
  | Ast.Read ls ->
      List.iter
        (fun l ->
          match t.c.input with
          | [] -> Store.error "READ past end of input"
          | v :: rest ->
              t.c.input <- rest;
              assign_scalar t l v)
        ls);
  flush t

and exec_stmts t stmts = List.iter (exec_stmt t) stmts

(* ------------------------------------------------------------------ *)
(* Loops                                                               *)
(* ------------------------------------------------------------------ *)

and exec_do t (h : Ast.do_header) (blk : Ast.block) =
  let lo = eval_int t h.Ast.lo in
  let hi = eval_int t h.Ast.hi in
  let step = match h.Ast.step with None -> 1 | Some e -> eval_int t e in
  if step = 0 then Store.error "zero DO step";
  match h.Ast.cls with
  | Ast.Seq ->
      (* a DO index lives in a register: inside a parallel worker it must
         be private to the worker, never a shared cell *)
      (match t.overlays with
      | top :: _ when lookup_overlays h.Ast.index t.overlays = None ->
          Hashtbl.replace top h.Ast.index
            (Store.scalar ~placement:Mach.Memory.Private 0.0)
      | _ -> ());
      let i = ref lo in
      let continue_ () = if step > 0 then !i <= hi else !i >= hi in
      while continue_ () do
        Fuel.tick ();
        assign_scalar t (Ast.LVar h.Ast.index) (float_of_int !i);
        charge t t.c.cfg.Mach.Config.scalar_op;
        exec_stmts t blk.Ast.body;
        i := !i + step
      done;
      flush t
  | cls ->
      flush t;
      exec_parallel_do t h blk ~lo ~hi ~step ~cls

and exec_parallel_do t h blk ~lo ~hi ~step ~cls =
  let cfg = t.c.cfg in
  let proc_ids, dispatch =
    match cls with
    | Ast.Cdoall | Ast.Cdoacross ->
        (Mach.Microtask.procs_cdo cfg ~cluster:t.cluster, Mach.Microtask.dispatch_cdo cfg)
    | Ast.Sdoall | Ast.Sdoacross ->
        (Mach.Microtask.procs_sdo cfg, Mach.Microtask.dispatch_sdo cfg)
    | Ast.Xdoall | Ast.Xdoacross ->
        (Mach.Microtask.procs_xdo cfg, Mach.Microtask.dispatch_sdo cfg)
    | Ast.Seq -> assert false
  in
  let cascade =
    if Ast.is_doacross cls then
      Some (Mach.Sync.Cascade.create ~cost:cfg.Mach.Config.await_cost ~first:lo t.c.sim)
    else None
  in
  (* each parallel loop (including parallel loops nested inside monitored
     ones) gets its own race-detector context; accesses in its iteration
     bodies are attributed to its iterations *)
  let mon =
    Option.map
      (fun det -> Race.enter_loop det ~index:h.Ast.index ~cls)
      t.c.detector
  in
  (* worker-local environments are created per processor *)
  let worker_tctx (ctx0 : Mach.Microtask.worker_ctx) =
    let overlay = Hashtbl.create 8 in
    let wt =
      {
        t with
        overlays = overlay :: t.overlays;
        cluster = ctx0.Mach.Microtask.w_cluster;
        pending = 0.0;
        doacross = None;
        rmon = None;
      }
    in
    (* loop-local declarations: private storage *)
    List.iter
      (fun d ->
        let entry =
          if d.Ast.d_dims = [] then
            Store.scalar ~placement:Mach.Memory.Private 0.0
          else
            let dims =
              List.map
                (fun (lo, hi) -> (eval_int wt lo, eval_int wt hi - eval_int wt lo + 1))
                d.Ast.d_dims
            in
            Store.Array
              (Store.make_array ~placement:Mach.Memory.Private
                 ~name:d.Ast.d_name dims)
        in
        Hashtbl.replace overlay d.Ast.d_name entry)
      h.Ast.locals;
    (* the loop index is private to the worker *)
    Hashtbl.replace overlay h.Ast.index
      (Store.scalar ~placement:Mach.Memory.Private 0.0);
    wt
  in
  let table : (int, tctx) Hashtbl.t = Hashtbl.create 8 in
  let get_wt ctx0 =
    match Hashtbl.find_opt table ctx0.Mach.Microtask.w_proc with
    | Some wt -> wt
    | None ->
        let wt = worker_tctx ctx0 in
        Hashtbl.replace table ctx0.Mach.Microtask.w_proc wt;
        wt
  in
  Mach.Microtask.run_loop t.c.sim ~dispatch ~proc_ids ~lo ~hi ~step
    ~preamble:(fun ctx0 ->
      let wt = get_wt ctx0 in
      exec_stmts wt blk.Ast.preamble;
      flush wt)
    ~postamble:(fun ctx0 ->
      let wt = get_wt ctx0 in
      exec_stmts wt blk.Ast.postamble;
      flush wt)
    (fun ctx0 ->
      let wt = get_wt ctx0 in
      let i = ctx0.Mach.Microtask.w_iter in
      assign_scalar wt (Ast.LVar h.Ast.index) (float_of_int i);
      wt.doacross <- Option.map (fun c -> (c, i)) cascade;
      wt.rmon <- Option.map (fun lc -> (lc, Race.fresh_state i)) mon;
      exec_stmts wt blk.Ast.body;
      wt.rmon <- None;
      (* an ordered loop iteration that never reached its await/advance
         still must advance so successors are not blocked *)
      (match cascade with
      | Some c when not (Hashtbl.mem c.Mach.Sync.Cascade.advanced i) ->
          Mach.Sync.Cascade.advance c i
      | _ -> ());
      flush wt)

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)
(* ------------------------------------------------------------------ *)

and find_unit c name =
  List.find_opt
    (fun u -> String.lowercase_ascii u.Ast.u_name = String.lowercase_ascii name)
    c.prog

and exec_call t name args =
  match String.lowercase_ascii name with
  | "await" -> (
      flush t;
      match (t.doacross, args) with
      | Some (casc, iter), [ _; d ] ->
          let dist = eval_int t d in
          Mach.Sync.Cascade.await casc ~iter ~dist;
          (match t.rmon with
          | Some (_, st) -> Race.note_await st dist
          | None -> ())
      | None, _ -> Store.error "await outside DOACROSS"
      | _ -> Store.error "await arity")
  | "advance" -> (
      flush t;
      match t.doacross with
      | Some (casc, iter) ->
          Mach.Sync.Cascade.advance casc iter;
          (match t.rmon with
          | Some (_, st) -> Race.note_advance st
          | None -> ())
      | None -> Store.error "advance outside DOACROSS")
  | "post" | "wait" | "clearevent" -> (
      flush t;
      let id = match args with [ e ] -> eval_int t e | _ -> 1 in
      let ev =
        match Hashtbl.find_opt t.c.events id with
        | Some e -> e
        | None ->
            let e = Mach.Sync.Event.create t.c.sim in
            Hashtbl.replace t.c.events id e;
            e
      in
      Mach.Sim.delay t.c.sim t.c.cfg.Mach.Config.await_cost;
      match String.lowercase_ascii name with
      | "post" -> Mach.Sync.Event.post ev
      | "wait" -> Mach.Sync.Event.wait ev
      | _ -> Mach.Sync.Event.clear ev)
  | "ctskstart" | "mtskstart" -> (
      (* subroutine-level tasking (paper §2.2.2): spawn a new thread
         running the named subroutine.  ctskstart builds a new cluster
         task through the operating system (expensive, unrestricted
         synchronization); mtskstart reuses a helper task (cheap). *)
      flush t;
      match args with
      | Ast.Var sub :: actuals -> (
          match find_unit t.c sub with
          | None -> Store.error "%s: unknown task subroutine %s" name sub
          | Some u ->
              let cost =
                if String.lowercase_ascii name = "ctskstart" then
                  t.c.cfg.Mach.Config.task_start_ctsk
                else t.c.cfg.Mach.Config.task_start_mtsk
              in
              (* bind the actuals NOW (by reference for arrays/scalars) by
                 evaluating them in the parent, then run the callee in a
                 fresh fiber *)
              t.c.tasks_outstanding <- t.c.tasks_outstanding + 1;
              let parent = { t with pending = 0.0 } in
              Mach.Sim.delay t.c.sim cost;
              Mach.Sim.spawn t.c.sim (fun () ->
                  ignore (call_unit parent u actuals ~want_result:false);
                  t.c.tasks_outstanding <- t.c.tasks_outstanding - 1;
                  if t.c.tasks_outstanding = 0 then
                    match t.c.task_done with
                    | Some ev -> Mach.Sync.Event.post ev
                    | None -> ()))
      | _ -> Store.error "%s: first argument must be a subroutine name" name)
  | "tskwait" ->
      (* wait for all outstanding subroutine-level tasks *)
      flush t;
      if t.c.tasks_outstanding > 0 then begin
        let ev = Mach.Sync.Event.create t.c.sim in
        t.c.task_done <- Some ev;
        Mach.Sync.Event.wait ev;
        t.c.task_done <- None
      end
  | "lock" | "unlock" -> (
      flush t;
      let id = match args with [ e ] -> eval_int t e | _ -> 1 in
      let lock =
        match Hashtbl.find_opt t.c.locks id with
        | Some l -> l
        | None ->
            let l =
              Mach.Sync.Lock.create ~cost:t.c.cfg.Mach.Config.lock_cost t.c.sim
            in
            Hashtbl.replace t.c.locks id l;
            l
      in
      if String.lowercase_ascii name = "lock" then begin
        Mach.Sync.Lock.acquire lock;
        match t.rmon with
        | Some (_, st) -> Race.note_lock st id
        | None -> ()
      end
      else begin
        (match t.rmon with
        | Some (_, st) -> Race.note_unlock st id
        | None -> ());
        Mach.Sync.Lock.release lock
      end)
  | "cedar_slr1" -> (
      (* first-order linear recurrence library routine *)
      match args with
      | [ x; b; c; lo; hi ] ->
          let xa = array_arg t [ x ] 0 in
          let get_vec e i =
            match e with
            | Ast.Var _ -> Store.get_elem (array_arg t [ e ] 0) [ i ]
            | Ast.Int n -> float_of_int n
            | _ -> Store.error "cedar_slr1 operand"
          in
          let lo = eval_int t lo and hi = eval_int t hi in
          flush t;
          Runtime_lib.slr1 t.c.sim t.c.cfg ~lo ~hi
            ~get_b:(fun i -> get_vec b i)
            ~get_c:(fun i -> get_vec c i)
            ~get_x:(fun i -> Store.get_elem xa [ i ])
            ~set_x:(fun i v -> Store.set_elem xa [ i ] v)
      | _ -> Store.error "cedar_slr1 arity")
  | _ -> (
      match find_unit t.c name with
      | Some u -> ignore (call_unit t u args ~want_result:false)
      | None -> Store.error "unknown subroutine %s" name)

and call_unit (t : tctx) (callee : Ast.punit) (args : Ast.expr list)
    ~want_result : float =
  charge t (4.0 *. t.c.cfg.Mach.Config.scalar_op);
  let formals =
    match callee.Ast.u_kind with
    | Ast.Subroutine ps | Ast.Function (_, ps) -> ps
    | Ast.Program -> Store.error "cannot CALL a PROGRAM"
  in
  if List.length formals <> List.length args then
    Store.error "arity mismatch calling %s" callee.Ast.u_name;
  let frame = Store.fresh_frame callee in
  let ct = { t with frame; overlays = []; pending = t.pending } in
  t.pending <- 0.0;
  (* bind formals: arrays by reference (views with callee dims), scalars by
     reference when the actual is a variable, else by value *)
  let writebacks = ref [] in
  List.iter2
    (fun formal actual ->
      let fsym = Symbols.lookup frame.Store.f_syms formal in
      let formal_is_array =
        match fsym with Some s -> s.Symbols.s_dims <> [] | None -> false
      in
      if formal_is_array then begin
        let base, off =
          match actual with
          | Ast.Var v -> (
              match find_entry t v with
              | Store.Array a -> (a, a.Store.a_off)
              | Store.Scalar _ -> Store.error "scalar %s passed to array formal" v)
          | Ast.Idx (v, subs) -> (
              match find_entry t v with
              | Store.Array a ->
                  let is = List.map (eval_int t) subs in
                  (a, Store.linear_index a is)
              | Store.Scalar _ -> Store.error "scalar %s subscripted" v)
          | _ -> Store.error "bad array actual for %s" formal
        in
        (* callee-side dims; evaluated after scalar formals are bound, so
           declare lazily via a thunk evaluated below *)
        let dims_exprs = (Option.get fsym).Symbols.s_dims in
        let entry_thunk () =
          let dims =
            List.map
              (fun (lo, hi) ->
                let l = eval_int ct lo in
                let h =
                  match hi with
                  | Ast.Int -1 ->
                      (* assumed size: rest of the actual *)
                      l + (Array.length base.Store.a_data - off) - 1
                  | e -> eval_int ct e
                in
                (l, h - l + 1))
              dims_exprs
          in
          Store.Array
            {
              Store.a_name = formal;
              a_id = base.Store.a_id;  (* a view: same storage identity *)
              a_data = base.Store.a_data;
              a_off = off;
              a_dims = Array.of_list dims;
              a_placement = base.Store.a_placement;
            }
        in
        writebacks := (formal, `Array entry_thunk) :: !writebacks
      end
      else
        match actual with
        | Ast.Var v
          when List.mem_assoc v t.frame.Store.f_syms.Symbols.params ->
            (* a PARAMETER constant passed as actual: bind by value *)
            Hashtbl.replace frame.Store.f_vars formal
              (Store.scalar ~placement:Mach.Memory.Private (eval t actual))
        | Ast.Var v -> (
            match find_entry t v with
            | Store.Scalar _ as e -> Hashtbl.replace frame.Store.f_vars formal e
            | Store.Array _ -> Store.error "array %s passed to scalar formal" v)
        | Ast.Idx (v, subs) -> (
            (* element by reference: copy-in/copy-out *)
            match find_entry t v with
            | Store.Array a ->
                let is = List.map (eval_int t) subs in
                monitor_elem t Race.ARead a is;
                let v0 = Store.get_elem a is in
                let cell = Store.scalar ~placement:a.Store.a_placement v0 in
                Hashtbl.replace frame.Store.f_vars formal cell;
                writebacks := (formal, `Cell (a, is, v0)) :: !writebacks
            | Store.Scalar _ -> Store.error "scalar %s subscripted" v)
        | e ->
            let v = eval t e in
            Hashtbl.replace frame.Store.f_vars formal
              (Store.scalar ~placement:Mach.Memory.Private v))
    formals args;
  (* now allocate array views (scalar formals are bound) *)
  List.iter
    (fun (formal, wb) ->
      match wb with
      | `Array thunk -> Hashtbl.replace frame.Store.f_vars formal (thunk ())
      | `Cell _ -> ())
    !writebacks;
  (try exec_stmts ct callee.Ast.u_body with Return_unit -> ());
  flush ct;
  (* copy-out element actuals — but only when the callee actually stored
     into the formal: genuine by-reference passing performs no store for a
     read-only argument, so an unconditional write-back would manufacture
     writes (and spurious races) the program never makes *)
  List.iter
    (fun (formal, wb) ->
      match wb with
      | `Cell (a, is, v0) -> (
          match Hashtbl.find_opt frame.Store.f_vars formal with
          | Some (Store.Scalar s) when s.v <> v0 ->
              monitor_elem t Race.AWrite a is;
              Store.set_elem a is s.v
          | _ -> ())
      | `Array _ -> ())
    !writebacks;
  if want_result then
    match Hashtbl.find_opt frame.Store.f_vars callee.Ast.u_name with
    | Some (Store.Scalar s) -> s.v
    | _ -> Store.error "function %s returned no value" callee.Ast.u_name
  else 0.0

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

type result = {
  cycles : float;
  output : string;
  global_words : float;
  cluster_words : float;
  busy : float;
}

(** Run a whole program on configuration [cfg]; the PROGRAM unit is the
    entry.  [input] feeds READ statements.  When [detector] is given,
    parallel loop bodies run with per-location access logging and any
    data races found are recorded in it (see {!Race}). *)
let m_runs =
  Obs.Metrics.counter Obs.Metrics.global
    ~help:"simulated executions" "interp_runs_total"

let m_race_issues =
  Obs.Metrics.counter Obs.Metrics.global
    ~help:"data races recorded by the dynamic detector"
    "interp_race_issues_total"

let run ?(input = []) ?detector ~(cfg : Mach.Config.t) (prog : Ast.program) :
    result =
  Obs.Trace.with_span "interp_run" @@ fun sp ->
  Obs.Metrics.incr m_runs;
  (* a detector may be shared across runs: count only this run's issues *)
  let issues_before =
    match detector with Some d -> List.length (Race.issues d) | None -> 0
  in
  let main =
    match List.find_opt (fun u -> u.Ast.u_kind = Ast.Program) prog with
    | Some u -> u
    | None -> Store.error "no PROGRAM unit"
  in
  let sim = Mach.Sim.create () in
  let c =
    {
      sim;
      mem = Mach.Memory.create cfg;
      cfg;
      prog;
      commons = Hashtbl.create 32;
      locks = Hashtbl.create 4;
      events = Hashtbl.create 4;
      tasks_outstanding = 0;
      task_done = None;
      output = Buffer.create 256;
      input;
      charging = true;
      detector;
    }
  in
  Mach.Sim.spawn sim (fun () ->
      let t =
        {
          c;
          frame = Store.fresh_frame main;
          overlays = [];
          cluster = 0;
          pending = 0.0;
          doacross = None;
          rmon = None;
        }
      in
      try exec_stmts t main.Ast.u_body with Stop_program -> ());
  let cycles = Mach.Sim.run sim in
  (match detector with
  | Some d ->
      let n = List.length (Race.issues d) - issues_before in
      if n > 0 then Obs.Metrics.incr ~by:n m_race_issues;
      Obs.Trace.count sp "races" (max 0 n)
  | None -> ());
  {
    cycles;
    output = Buffer.contents c.output;
    global_words = c.mem.Mach.Memory.global_words;
    cluster_words = c.mem.Mach.Memory.cluster_words;
    busy = sim.Mach.Sim.total_busy;
  }
