(** Runtime storage for the Cedar Fortran interpreter.

    All numeric values are held as OCaml floats (Fortran INTEGERs in the
    workloads stay far below 2^53, so arithmetic is exact); LOGICALs are
    0/1.  Arrays carry their dimension descriptors for subscript
    linearization and bounds checking, plus the source-level name for
    diagnostics.  Each object knows its memory placement so the executor
    can charge the right latencies, and carries a process-unique storage
    id so the race detector can identify a memory location across
    aliases (array views passed by reference share the id of their
    base). *)

open Fortran

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt

(* storage ids are drawn from one atomic counter so concurrent service
   workers (separate domains) never hand out the same id *)
let id_counter = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add id_counter 1

type arr = {
  a_name : string;  (** source-level name (the callee formal for views) *)
  a_id : int;  (** storage identity; shared by views of the same data *)
  a_data : float array;
  a_off : int;  (** start offset into [a_data] (element-anchored actuals) *)
  a_dims : (int * int) array;  (** (lower bound, extent) per dimension *)
  a_placement : Machine.Memory.placement;
}

type entry =
  | Scalar of {
      mutable v : float;
      placement : Machine.Memory.placement;
      id : int;
    }
  | Array of arr

let scalar ~placement v = Scalar { v; placement; id = fresh_id () }

type frame = {
  f_unit : Ast.punit;
  f_syms : Symbols.t;
  f_vars : (string, entry) Hashtbl.t;
}

let ref_str name subs =
  Printf.sprintf "%s(%s)" name (String.concat "," (List.map string_of_int subs))

let bounds_str (a : arr) =
  a.a_dims |> Array.to_list
  |> List.map (fun (lo, ext) ->
         if ext >= 0 then Printf.sprintf "%d:%d" lo (lo + ext - 1)
         else Printf.sprintf "%d:*" lo)
  |> String.concat ","

(** Linearize subscripts; bounds-checked.  Errors name the array, the
    full offending index vector and the declared bounds. *)
let linear_index (a : arr) (subs : int list) =
  let n = Array.length a.a_dims in
  if List.length subs <> n then
    error "rank mismatch: %s has %d subscript(s) but %s is declared rank %d (%s)"
      (ref_str a.a_name subs) (List.length subs) a.a_name n (bounds_str a);
  let idx = ref a.a_off and mult = ref 1 in
  List.iteri
    (fun k s ->
      let lo, ext = a.a_dims.(k) in
      if ext >= 0 && (s < lo || s >= lo + ext) then
        error
          "subscript out of bounds: %s — index %d of dimension %d is outside \
           the declared bounds %s(%s)"
          (ref_str a.a_name subs) s (k + 1) a.a_name (bounds_str a);
      idx := !idx + ((s - lo) * !mult);
      mult := !mult * max ext 1)
    subs;
  if !idx < 0 || !idx >= Array.length a.a_data then
    error "subscript out of bounds: %s — linearized offset %d exceeds the %d \
           element(s) of storage behind %s(%s)"
      (ref_str a.a_name subs) !idx (Array.length a.a_data) a.a_name
      (bounds_str a);
  !idx

let get_elem a subs = a.a_data.(linear_index a subs)
let set_elem a subs v = a.a_data.(linear_index a subs) <- v

let total_elems dims =
  Array.fold_left (fun acc (_, ext) -> acc * max ext 1) 1 dims

let make_array ~placement ~name dims =
  let dims = Array.of_list dims in
  {
    a_name = name;
    a_id = fresh_id ();
    a_data = Array.make (total_elems dims) 0.0;
    a_off = 0;
    a_dims = dims;
    a_placement = placement;
  }

let fresh_frame u = { f_unit = u; f_syms = Symbols.of_unit u; f_vars = Hashtbl.create 32 }
