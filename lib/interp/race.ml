(** Dynamic data-race detection for parallel Cedar Fortran loops.

    While a monitored parallel loop executes, every read and write the
    iteration bodies make to non-private storage is logged per memory
    location (storage id + element offset), tagged with the iteration
    number and the synchronization state at the time of the access:

    - for DOACROSS loops, whether the access happened after the
      iteration's [await] (and with what delay factor) and whether it
      happened after the iteration's [advance];
    - the set of locks held (unordered critical sections).

    Two accesses to the same location from distinct iterations, at
    least one a write, form a race unless the cascade orders them —
    iteration [j] is ordered after an access of iteration [i < j] iff
    the access of [i] precedes [i]'s [advance] and the access of [j]
    follows [j]'s [await(d)] with [j - d >= i] (the cascade completes
    iterations in order, so awaiting [j - d] also awaits [i]) — or both
    accesses hold a common lock (mutual exclusion: no data race, though
    the outcome may still be order-dependent).

    The detector is a pure observer: it charges no cycles and never
    changes scheduling, so a monitored run computes exactly what an
    unmonitored run computes. *)

type access = ARead | AWrite

let show_access = function ARead -> "read" | AWrite -> "write"

type issue = {
  i_unit : string;  (** reserved; the executor does not track unit names *)
  i_loop : string;  (** index variable of the monitored loop *)
  i_cls : Fortran.Ast.loop_class;
  i_location : string;  (** e.g. ["a(7)"] or ["t"] *)
  i_iter_a : int;
  i_kind_a : access;
  i_iter_b : int;
  i_kind_b : access;
}

let issue_to_string i =
  Printf.sprintf "%s %s: %s/%s race on %s between iterations %d and %d"
    (Fortran.Ast.loop_keyword i.i_cls)
    i.i_loop (show_access i.i_kind_a) (show_access i.i_kind_b) i.i_location
    i.i_iter_a i.i_iter_b

type t = {
  mutable issues : issue list;  (** newest first *)
  mutable dropped : int;  (** issues beyond [limit] *)
  limit : int;
}

let create ?(limit = 64) () = { issues = []; dropped = 0; limit }
let issues t = List.rev t.issues

(** Per-worker, per-iteration synchronization state. *)
type state = {
  st_iter : int;
  mutable st_await : int option;
      (** smallest delay factor awaited so far in this iteration *)
  mutable st_advanced : bool;  (** past this iteration's [advance] *)
  mutable st_locks : int list;  (** lock ids currently held *)
}

let fresh_state iter =
  { st_iter = iter; st_await = None; st_advanced = false; st_locks = [] }

let note_await st dist =
  st.st_await <-
    (match st.st_await with None -> Some dist | Some d -> Some (min d dist))

let note_advance st = st.st_advanced <- true
let note_lock st id = st.st_locks <- id :: st.st_locks

let note_unlock st id =
  let rec drop = function
    | [] -> []
    | l :: rest -> if l = id then rest else l :: drop rest
  in
  st.st_locks <- drop st.st_locks

(* one recorded access *)
type summary = {
  m_iter : int;
  m_kind : access;
  m_await : int option;
  m_advanced : bool;
  m_locks : int list;
}

type cell = {
  mutable c_accesses : summary list;
  mutable c_reported : bool;  (** one issue per location is enough *)
}

(* bound the per-location log; beyond this we may miss a race on an
   extremely hot location, which the issue count already dwarfs *)
let max_summaries = 4096

type loopctx = {
  lc_det : t;
  lc_index : string;
  lc_cls : Fortran.Ast.loop_class;
  lc_cells : (int * int, cell) Hashtbl.t;  (** (storage id, offset) *)
}

let enter_loop det ~index ~cls =
  { lc_det = det; lc_index = index; lc_cls = cls; lc_cells = Hashtbl.create 64 }

(* is [a] (earlier iteration) ordered before [b] by the cascade? *)
let ordered a b =
  (not a.m_advanced)
  &&
  match b.m_await with
  | Some d -> b.m_iter - d >= a.m_iter
  | None -> false

let mutual_lock a b = List.exists (fun l -> List.mem l b.m_locks) a.m_locks

let conflict a b =
  a.m_iter <> b.m_iter
  && (a.m_kind = AWrite || b.m_kind = AWrite)
  && (not (mutual_lock a b))
  &&
  let early, late = if a.m_iter < b.m_iter then (a, b) else (b, a) in
  not (ordered early late)

let report lc loc a b =
  let det = lc.lc_det in
  if List.length det.issues >= det.limit then det.dropped <- det.dropped + 1
  else
    det.issues <-
      {
        i_unit = "";
        i_loop = lc.lc_index;
        i_cls = lc.lc_cls;
        i_location = loc ();
        i_iter_a = min a.m_iter b.m_iter;
        i_kind_a = (if a.m_iter <= b.m_iter then a.m_kind else b.m_kind);
        i_iter_b = max a.m_iter b.m_iter;
        i_kind_b = (if a.m_iter <= b.m_iter then b.m_kind else a.m_kind);
      }
      :: det.issues

(** Log one access to location (storage id [id], element offset [off]).
    [loc] renders the location lazily — only evaluated when a race is
    actually found. *)
let note lc (st : state) (kind : access) ~id ~off ~(loc : unit -> string) =
  let key = (id, off) in
  let cell =
    match Hashtbl.find_opt lc.lc_cells key with
    | Some c -> c
    | None ->
        let c = { c_accesses = []; c_reported = false } in
        Hashtbl.replace lc.lc_cells key c;
        c
  in
  if not cell.c_reported then begin
    let here =
      {
        m_iter = st.st_iter;
        m_kind = kind;
        m_await = st.st_await;
        m_advanced = st.st_advanced;
        m_locks = st.st_locks;
      }
    in
    match List.find_opt (fun prev -> conflict prev here) cell.c_accesses with
    | Some prev ->
        cell.c_reported <- true;
        report lc loc prev here
    | None ->
        if
          List.length cell.c_accesses < max_summaries
          && not (List.mem here cell.c_accesses)
        then cell.c_accesses <- here :: cell.c_accesses
  end
