(** Runtime storage for the Cedar Fortran interpreter.

    All numeric values are held as OCaml floats (Fortran INTEGERs in the
    workloads stay far below 2^53, so arithmetic is exact); LOGICALs are
    0/1.  Arrays carry their dimension descriptors for subscript
    linearization and bounds checking, plus the source-level name for
    diagnostics.  Each object knows its memory placement so the executor
    can charge the right latencies, and carries a process-unique storage
    id so the race detector can identify a memory location across
    aliases (array views passed by reference share the id of their
    base).

    The records are deliberately concrete: the executor builds array
    {e views} (shared [a_data], shifted [a_off]) for element-anchored
    actual arguments, so the representation is part of the contract. *)

open Fortran

exception Runtime_error of string

val error : ('a, unit, string, 'b) format4 -> 'a
(** [error fmt ...] raises {!Runtime_error} with the formatted text. *)

val fresh_id : unit -> int
(** Process-unique storage id (atomic counter — concurrent service
    workers never hand out the same id). *)

type arr = {
  a_name : string;  (** source-level name (the callee formal for views) *)
  a_id : int;  (** storage identity; shared by views of the same data *)
  a_data : float array;
  a_off : int;  (** start offset into [a_data] (element-anchored actuals) *)
  a_dims : (int * int) array;  (** (lower bound, extent) per dimension *)
  a_placement : Machine.Memory.placement;
}

type entry =
  | Scalar of {
      mutable v : float;
      placement : Machine.Memory.placement;
      id : int;
    }
  | Array of arr

val scalar : placement:Machine.Memory.placement -> float -> entry

type frame = {
  f_unit : Ast.punit;
  f_syms : Symbols.t;
  f_vars : (string, entry) Hashtbl.t;
}

val ref_str : string -> int list -> string
(** ["a(1,2)"] — render an array reference for diagnostics. *)

val bounds_str : arr -> string
(** The declared bounds, e.g. ["1:10,0:*"]. *)

val linear_index : arr -> int list -> int
(** Linearize subscripts; bounds-checked.  Errors name the array, the
    full offending index vector and the declared bounds. *)

val get_elem : arr -> int list -> float
val set_elem : arr -> int list -> float -> unit

val total_elems : (int * int) array -> int
(** Element count behind the given dimension descriptors. *)

val make_array :
  placement:Machine.Memory.placement ->
  name:string ->
  (int * int) list ->
  arr
(** A zero-filled array with a fresh storage id. *)

val fresh_frame : Ast.punit -> frame
