(* See metrics.mli.  The registry table is guarded by a mutex (creation
   is rare and lookups return the instrument handle, which callers keep);
   counter/gauge cells are atomics so domains merge increments without
   coordination; each histogram has its own small lock. *)

type counter = { c_name : string; c_help : string; c_cell : int Atomic.t }
type gauge = { g_name : string; g_help : string; g_cell : float Atomic.t }

type histogram = {
  h_name : string;
  h_help : string;
  h_bounds : float array;  (* strictly increasing upper bounds *)
  h_mx : Mutex.t;
  h_counts : int array;  (* per bound, plus the implicit +Inf last *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { mx : Mutex.t; tbl : (string, metric) Hashtbl.t }

let create () = { mx = Mutex.create (); tbl = Hashtbl.create 64 }
let global = create ()

let with_lock t f =
  Mutex.lock t.mx;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mx) f

let get_or_create t name mk classify =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some m -> (
          match classify m with
          | Some x -> x
          | None ->
              invalid_arg
                (Printf.sprintf "Metrics: %s already registered with another type"
                   name))
      | None ->
          let m, x = mk () in
          Hashtbl.replace t.tbl name m;
          x)

let counter ?(help = "") t name =
  get_or_create t name
    (fun () ->
      let c = { c_name = name; c_help = help; c_cell = Atomic.make 0 } in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_cell by)
let counter_value c = Atomic.get c.c_cell

let gauge ?(help = "") t name =
  get_or_create t name
    (fun () ->
      let g = { g_name = name; g_help = help; g_cell = Atomic.make 0.0 } in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.g_cell v

let add_gauge g d =
  (* CAS loop: adds from racing domains must not be lost *)
  let rec go () =
    let cur = Atomic.get g.g_cell in
    if not (Atomic.compare_and_set g.g_cell cur (cur +. d)) then go ()
  in
  go ()

let gauge_value g = Atomic.get g.g_cell

let default_buckets =
  [ 0.0001; 0.0005; 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0 ]

let histogram ?(help = "") ?(buckets = default_buckets) t name =
  let bounds = Array.of_list (List.sort_uniq compare buckets) in
  get_or_create t name
    (fun () ->
      let h =
        {
          h_name = name;
          h_help = help;
          h_bounds = bounds;
          h_mx = Mutex.create ();
          h_counts = Array.make (Array.length bounds + 1) 0;
          h_sum = 0.0;
          h_count = 0;
        }
      in
      (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  let rec slot i =
    if i >= Array.length h.h_bounds then i
    else if v <= h.h_bounds.(i) then i
    else slot (i + 1)
  in
  let i = slot 0 in
  Mutex.lock h.h_mx;
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  Mutex.unlock h.h_mx

let histogram_count h =
  Mutex.lock h.h_mx;
  let n = h.h_count in
  Mutex.unlock h.h_mx;
  n

let histogram_sum h =
  Mutex.lock h.h_mx;
  let s = h.h_sum in
  Mutex.unlock h.h_mx;
  s

let find t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (Counter c) -> `Counter (Atomic.get c.c_cell)
      | Some (Gauge g) -> `Gauge (Atomic.get g.g_cell)
      | Some (Histogram _) | None -> `None)

let sorted t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ m acc -> m :: acc) t.tbl []
      |> List.sort
           (let name = function
              | Counter c -> c.c_name
              | Gauge g -> g.g_name
              | Histogram h -> h.h_name
            in
            fun a b -> compare (name a) (name b)))

(* %.17g-style float printing would be noisy; %g keeps dumps readable
   and round-trips the magnitudes we record (counts and seconds) *)
let fstr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let dump t =
  let b = Buffer.create 1024 in
  List.iter
    (fun m ->
      (match m with
      | Counter c ->
          if c.c_help <> "" then
            Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" c.c_name c.c_help);
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" c.c_name);
          Buffer.add_string b
            (Printf.sprintf "%s %d\n" c.c_name (Atomic.get c.c_cell))
      | Gauge g ->
          if g.g_help <> "" then
            Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" g.g_name g.g_help);
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" g.g_name);
          Buffer.add_string b
            (Printf.sprintf "%s %s\n" g.g_name (fstr (Atomic.get g.g_cell)))
      | Histogram h ->
          if h.h_help <> "" then
            Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" h.h_name h.h_help);
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" h.h_name);
          Mutex.lock h.h_mx;
          let cum = ref 0 in
          Array.iteri
            (fun i bound ->
              cum := !cum + h.h_counts.(i);
              Buffer.add_string b
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name
                   (fstr bound) !cum))
            h.h_bounds;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" h.h_name h.h_count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" h.h_name (fstr h.h_sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count %d\n" h.h_name h.h_count);
          Mutex.unlock h.h_mx))
    (sorted t);
  Buffer.contents b

let to_json t =
  let item m =
    match m with
    | Counter c ->
        Printf.sprintf {|"%s":{"type":"counter","value":%d}|} c.c_name
          (Atomic.get c.c_cell)
    | Gauge g ->
        Printf.sprintf {|"%s":{"type":"gauge","value":%s}|} g.g_name
          (fstr (Atomic.get g.g_cell))
    | Histogram h ->
        Mutex.lock h.h_mx;
        let buckets =
          String.concat ","
            (Array.to_list
               (Array.mapi
                  (fun i bound ->
                    Printf.sprintf {|{"le":%s,"n":%d}|} (fstr bound)
                      h.h_counts.(i))
                  h.h_bounds))
        in
        let s =
          Printf.sprintf
            {|"%s":{"type":"histogram","count":%d,"sum":%s,"buckets":[%s]}|}
            h.h_name h.h_count (fstr h.h_sum) buckets
        in
        Mutex.unlock h.h_mx;
        s
  in
  "{" ^ String.concat "," (List.map item (sorted t)) ^ "}"

let reset t =
  with_lock t (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c.c_cell 0
          | Gauge g -> Atomic.set g.g_cell 0.0
          | Histogram h ->
              Mutex.lock h.h_mx;
              Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
              h.h_sum <- 0.0;
              h.h_count <- 0;
              Mutex.unlock h.h_mx)
        t.tbl)
