(** Span tracing for the whole restructuring stack.

    A {e span} is a named, timed region of work with string attributes
    and integer counters; spans nest per domain (each worker domain keeps
    its own open-span stack, so concurrent jobs never interleave their
    trees).  A {e trace id} groups every span of one service job from
    submission to resolution, across queue wait, retries and validation.

    One tracer is installed process-wide ({!install}); instrumented code
    calls {!with_span} against the ambient tracer.  Two sinks exist:

    - {!memory} keeps finished span trees in memory — the test sink;
    - {!chrome} buffers events and writes a Chrome trace-event JSON file
      on {!flush} (open it in [chrome://tracing] or Perfetto).

    The disabled path is one atomic load and a branch: with the default
    {!disabled} tracer installed, {!with_span} calls its body with
    {!null_span} and records nothing — instrumentation left in hot paths
    costs effectively nothing when tracing is off. *)

type t
(** A tracer: a sink plus its buffered output. *)

type span
(** A live (open) span.  Attribute/counter writes on {!null_span} are
    no-ops, so instrumented code never branches on enablement itself. *)

val disabled : t
(** The no-op tracer; installed by default. *)

val memory : unit -> t
(** A tracer collecting finished root-span trees in memory. *)

val chrome : path:string -> t
(** A tracer buffering Chrome trace events; {!flush} writes them as a
    JSON object ([{"traceEvents": [...]}]) to [path]. *)

val install : t -> unit
(** Make [t] the ambient process-wide tracer.  Spans already open keep
    reporting to the tracer they started under. *)

val installed : unit -> t
val enabled : unit -> bool
(** [true] iff the ambient tracer is not {!disabled} — the cheap guard
    for skipping attribute construction entirely. *)

val null_span : span

val fresh_trace_id : unit -> int
(** Process-unique positive id (atomic counter). *)

val with_trace_id : int -> (unit -> 'a) -> 'a
(** Run the thunk with the given trace id as this domain's current trace
    context; spans opened inside carry it. *)

val current_trace_id : unit -> int
(** This domain's current trace id; 0 outside {!with_trace_id}. *)

val with_span : ?attrs:(string * string) list -> string -> (span -> 'a) -> 'a
(** [with_span name f] opens a span named [name] as a child of this
    domain's innermost open span (or as a new root), runs [f], and closes
    the span when [f] returns {e or raises}. *)

val attr : span -> string -> string -> unit
(** Set/replace a string attribute on an open span. *)

val count : span -> string -> int -> unit
(** Add to a per-span integer counter (created at 0). *)

val completed :
  ?attrs:(string * string) list ->
  start_s:float ->
  stop_s:float ->
  string ->
  unit
(** Record an already-elapsed region (e.g. queue wait, measured from the
    submission timestamp) as a child of the current open span, with
    explicit wall-clock bounds in seconds. *)

(** A finished span, as kept by the {!memory} sink. *)
type tree = {
  t_name : string;
  t_trace : int;  (** trace id; 0 when the span ran outside a trace *)
  t_attrs : (string * string) list;
  t_counts : (string * int) list;
  t_start_s : float;
  t_stop_s : float;
  t_domain : int;  (** id of the domain that ran the span *)
  t_children : tree list;  (** in completion order *)
}

val roots : t -> tree list
(** Finished root spans, oldest first.  Empty for {!chrome} sinks before
    and after {!flush} — chrome output is inspected from the file. *)

val flush : t -> unit
(** Write buffered output.  A no-op for {!disabled} and {!memory}. *)

val find_spans : (tree -> bool) -> tree list -> tree list
(** All spans (at any depth) of the given forests satisfying the
    predicate, preorder. *)
