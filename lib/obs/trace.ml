(* See trace.mli.  Concurrency structure: each domain keeps its own
   open-span stack in domain-local storage (spans never migrate between
   domains), so the only shared state is the tracer's finished-roots
   list, guarded by one mutex.  The disabled fast path reads a single
   atomic flag and never touches the clock or the DLS stack. *)

type kind = Disabled | Memory | Chrome of string

type tree = {
  t_name : string;
  t_trace : int;
  t_attrs : (string * string) list;
  t_counts : (string * int) list;
  t_start_s : float;
  t_stop_s : float;
  t_domain : int;
  t_children : tree list;
}

type t = {
  kind : kind;
  mx : Mutex.t;
  mutable finished : tree list;  (* newest first *)
  epoch : float;  (* chrome timestamps are relative to tracer creation *)
}

type span = {
  sp_name : string;
  sp_trace : int;
  mutable sp_attrs : (string * string) list;
  mutable sp_counts : (string * int) list;
  sp_start : float;
  mutable sp_children : tree list;  (* newest first *)
  sp_sink : t option;  (* None for null_span *)
}

let now () = Unix.gettimeofday ()

let make kind = { kind; mx = Mutex.create (); finished = []; epoch = now () }
let disabled = make Disabled
let memory () = make Memory
let chrome ~path = make (Chrome path)

let ambient = Atomic.make disabled
let on = Atomic.make false

let install t =
  Atomic.set ambient t;
  Atomic.set on (t.kind <> Disabled)

let installed () = Atomic.get ambient
let enabled () = Atomic.get on

let null_span =
  {
    sp_name = "";
    sp_trace = 0;
    sp_attrs = [];
    sp_counts = [];
    sp_start = 0.0;
    sp_children = [];
    sp_sink = None;
  }

(* ------------------------------------------------------------------ *)
(* Per-domain span stack and trace context                             *)
(* ------------------------------------------------------------------ *)

type dstate = { mutable stack : span list; mutable trace : int }

let key : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { stack = []; trace = 0 })

let trace_counter = Atomic.make 0
let fresh_trace_id () = 1 + Atomic.fetch_and_add trace_counter 1

let with_trace_id id f =
  let st = Domain.DLS.get key in
  let saved = st.trace in
  st.trace <- id;
  Fun.protect ~finally:(fun () -> st.trace <- saved) f

let current_trace_id () = (Domain.DLS.get key).trace

(* ------------------------------------------------------------------ *)
(* Span lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

let attach sink tree st =
  match st.stack with
  | parent :: _ -> parent.sp_children <- tree :: parent.sp_children
  | [] ->
      if sink.kind <> Disabled then begin
        Mutex.lock sink.mx;
        sink.finished <- tree :: sink.finished;
        Mutex.unlock sink.mx
      end

let finish (sp : span) st =
  (* pop exactly this span; an exception inside a child's [finally]
     cannot desynchronize the stack because closes run innermost-first *)
  (match st.stack with s :: rest when s == sp -> st.stack <- rest | _ -> ());
  let tree =
    {
      t_name = sp.sp_name;
      t_trace = sp.sp_trace;
      t_attrs = List.rev sp.sp_attrs;
      t_counts = List.rev sp.sp_counts;
      t_start_s = sp.sp_start;
      t_stop_s = now ();
      t_domain = (Domain.self () :> int);
      t_children = List.rev sp.sp_children;
    }
  in
  match sp.sp_sink with None -> () | Some sink -> attach sink tree st

let with_span ?(attrs = []) name f =
  if not (Atomic.get on) then f null_span
  else begin
    let st = Domain.DLS.get key in
    let sp =
      {
        sp_name = name;
        sp_trace = st.trace;
        sp_attrs = List.rev attrs;
        sp_counts = [];
        sp_start = now ();
        sp_children = [];
        sp_sink = Some (Atomic.get ambient);
      }
    in
    st.stack <- sp :: st.stack;
    Fun.protect ~finally:(fun () -> finish sp st) (fun () -> f sp)
  end

let attr sp k v =
  if sp.sp_sink <> None then
    sp.sp_attrs <- (k, v) :: List.remove_assoc k sp.sp_attrs

let count sp k n =
  if sp.sp_sink <> None then
    let cur = Option.value ~default:0 (List.assoc_opt k sp.sp_counts) in
    sp.sp_counts <- (k, cur + n) :: List.remove_assoc k sp.sp_counts

let completed ?(attrs = []) ~start_s ~stop_s name =
  if Atomic.get on then begin
    let st = Domain.DLS.get key in
    let tree =
      {
        t_name = name;
        t_trace = st.trace;
        t_attrs = attrs;
        t_counts = [];
        t_start_s = start_s;
        t_stop_s = stop_s;
        t_domain = (Domain.self () :> int);
        t_children = [];
      }
    in
    attach (Atomic.get ambient) tree st
  end

let roots t =
  Mutex.lock t.mx;
  let r = List.rev t.finished in
  Mutex.unlock t.mx;
  r

let rec find_spans p forest =
  List.concat_map
    (fun tr ->
      (if p tr then [ tr ] else []) @ find_spans p tr.t_children)
    forest

(* ------------------------------------------------------------------ *)
(* Chrome trace-event output                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* one complete ("X") event per finished span; args carry the trace id,
   attributes and counters *)
let rec emit_events buf ~epoch ~first tr =
  if not !first then Buffer.add_string buf ",\n";
  first := false;
  let ts = (tr.t_start_s -. epoch) *. 1e6 in
  let dur = Float.max 0.0 (tr.t_stop_s -. tr.t_start_s) *. 1e6 in
  let args =
    (if tr.t_trace > 0 then [ Printf.sprintf {|"trace":%d|} tr.t_trace ]
     else [])
    @ List.map
        (fun (k, v) ->
          Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v))
        tr.t_attrs
    @ List.map
        (fun (k, n) -> Printf.sprintf {|"%s":%d|} (json_escape k) n)
        tr.t_counts
  in
  Buffer.add_string buf
    (Printf.sprintf
       {|{"name":"%s","cat":"cedar","ph":"X","ts":%.1f,"dur":%.1f,"pid":1,"tid":%d,"args":{%s}}|}
       (json_escape tr.t_name) ts dur tr.t_domain (String.concat "," args));
  List.iter (emit_events buf ~epoch ~first) tr.t_children

let flush t =
  match t.kind with
  | Disabled | Memory -> ()
  | Chrome path ->
      let forest = roots t in
      let buf = Buffer.create 4096 in
      Buffer.add_string buf "{\"traceEvents\":[\n";
      let first = ref true in
      List.iter (emit_events buf ~epoch:t.epoch ~first) forest;
      Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
      let oc = open_out path in
      Buffer.output_buffer oc buf;
      close_out oc
