(** Process-wide metrics registry: named counters, gauges and histograms
    with a [/metrics]-style text dump and a JSON export.

    Counters and gauges are atomics, so increments from concurrent worker
    domains merge without locks; histograms take a short per-histogram
    lock on observe.  Instruments are get-or-create by name: the same
    name always yields the same instrument, so instrumentation points in
    different modules (or domains) share one time series. *)

type t
(** A registry. *)

val global : t
(** The process-wide default registry every subsystem reports into. *)

val create : unit -> t
(** A private registry (tests). *)

type counter
type gauge
type histogram

val counter : ?help:string -> t -> string -> counter
(** Get or create a monotonic counter.
    @raise Invalid_argument if [name] exists with a different type. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : ?help:string -> t -> string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?help:string -> ?buckets:float list -> t -> string -> histogram
(** Get or create a histogram with the given upper bucket bounds (a
    [+Inf] bucket is implicit; default bounds suit second-scale phase
    timings). *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val find : t -> string -> [ `Counter of int | `Gauge of float | `None ]
(** Point read by name, without creating anything. *)

val dump : t -> string
(** Text exposition, one instrument per stanza ([# TYPE name kind] then
    the samples), names sorted — the [/metrics] page of a service that
    has no HTTP listener. *)

val to_json : t -> string
(** The same data as one JSON object keyed by instrument name. *)

val reset : t -> unit
(** Zero every instrument (tests); instruments stay registered. *)
