(* LRU via lazy deletion: every access stamps the entry with a fresh tick
   and appends (key, tick) to a recency queue.  Eviction pops the queue
   until it finds a pair whose tick still matches the entry's — stale
   pairs (the entry was touched again later, or already evicted) are
   discarded.  Amortized O(1); the queue never exceeds one pair per
   table operation. *)

type 'a entry = { value : 'a; mutable stamp : int }

type 'a t = {
  table : (string, 'a entry) Hashtbl.t;
  recency : (string * int) Queue.t;
  capacity : int;
  mutex : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

(* mirrored into the process-wide registry so `--metrics` sees cache
   behaviour without a Server.stats call *)
let m_hits =
  Obs.Metrics.counter Obs.Metrics.global
    ~help:"cache lookups served from the table" "service_cache_hits_total"

let m_misses =
  Obs.Metrics.counter Obs.Metrics.global ~help:"cache lookups that missed"
    "service_cache_misses_total"

let m_evictions =
  Obs.Metrics.counter Obs.Metrics.global
    ~help:"entries evicted to stay under capacity"
    "service_cache_evictions_total"

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: capacity < 0";
  {
    table = Hashtbl.create (max 16 capacity);
    recency = Queue.create ();
    capacity;
    mutex = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let digest content = Digest.to_hex (Digest.string content)

let with_lock c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let touch c key e =
  c.tick <- c.tick + 1;
  e.stamp <- c.tick;
  Queue.push (key, c.tick) c.recency

let find c key =
  with_lock c (fun () ->
      match Hashtbl.find_opt c.table key with
      | Some e ->
          c.hits <- c.hits + 1;
          Obs.Metrics.incr m_hits;
          touch c key e;
          Some e.value
      | None ->
          c.misses <- c.misses + 1;
          Obs.Metrics.incr m_misses;
          None)

let evict_lru c =
  let rec go () =
    match Queue.take_opt c.recency with
    | None -> ()
    | Some (key, stamp) -> (
        match Hashtbl.find_opt c.table key with
        | Some e when e.stamp = stamp ->
            Hashtbl.remove c.table key;
            c.evictions <- c.evictions + 1;
            Obs.Metrics.incr m_evictions
        | _ -> go () (* stale pair: entry touched since, or gone *))
  in
  go ()

let add c key value =
  if c.capacity > 0 then
    with_lock c (fun () ->
        (match Hashtbl.find_opt c.table key with
        | Some _ -> Hashtbl.remove c.table key
        | None ->
            if Hashtbl.length c.table >= c.capacity then evict_lru c);
        let e = { value; stamp = 0 } in
        touch c key e;
        Hashtbl.add c.table key e)

let remove c key =
  with_lock c (fun () ->
      (* the recency queue's pairs for this key go stale and are skipped
         by evict_lru; not counted as an eviction (the caller dropped it
         deliberately, e.g. on a checksum mismatch) *)
      Hashtbl.remove c.table key)

let export c =
  with_lock c (fun () ->
      (* a snapshot, deliberately without touching recency: exporting for
         replication must not perturb the LRU order *)
      Hashtbl.fold (fun key e acc -> (key, e.value) :: acc) c.table [])

let stats c =
  with_lock c (fun () ->
      {
        hits = c.hits;
        misses = c.misses;
        evictions = c.evictions;
        entries = Hashtbl.length c.table;
      })

let hit_rate (s : stats) =
  let lookups = s.hits + s.misses in
  if lookups = 0 then 0.0 else float_of_int s.hits /. float_of_int lookups
