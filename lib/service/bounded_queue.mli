(** Bounded multi-producer / multi-consumer blocking queue.

    The job feed of the restructuring service: submitters block when the
    queue is full (backpressure), worker domains block when it is empty.
    Protected by one mutex and two condition variables; FIFO order is
    preserved.  A closed queue rejects new items but drains the ones
    already enqueued. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1] *)

val push : 'a t -> 'a -> bool
(** Enqueue, blocking while the queue is at capacity.  Returns [false]
    (without enqueuing) if the queue was closed. *)

val try_push : 'a t -> 'a -> bool
(** Non-blocking enqueue: [false] when full or closed.  Used by the
    supervisor to requeue a dead worker's job — the supervisor must never
    block on backpressure while it is the only thing healing the pool. *)

val pop : 'a t -> 'a option
(** Dequeue, blocking while the queue is empty.  Returns [None] once the
    queue is closed {e and} drained — the worker-shutdown signal. *)

val close : 'a t -> unit
(** Reject further pushes and wake every blocked producer/consumer. *)

val length : 'a t -> int
(** Items currently queued (racy snapshot; exact under the caller's own
    synchronization). *)

val high_water : 'a t -> int
(** Deepest the queue has ever been — the backlog high-water mark. *)
