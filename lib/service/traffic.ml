type cfg = {
  requests : int;
  clients : int;
  seed : int;
  size_jitter : int;
  batch : int;
  validate : bool;
  target : Codegen.Target.t;
}

type summary = {
  s_requests : int;
  s_fresh : int;
  s_cached : int;
  s_failed : int;
  s_timeout : int;
  s_cancelled : int;
  s_full : int;
  s_conservative : int;
  s_passthrough : int;
  s_wall_s : float;
  s_errors : (string * string) list;
}

let default_cfg =
  {
    requests = 200;
    clients = 8;
    seed = 42;
    size_jitter = 4;
    batch = 4;
    validate = false;
    target = Codegen.Target.Cedar;
  }

let corpus () = Workloads.Linalg.all @ Workloads.Perfect.all

(* Each request index gets its own RNG state seeded by (seed, i): the
   sequence is deterministic and any single index can be replayed in
   isolation, hitting the cache entry of the original. *)
let nth_request ?(validate = false) ?(target = Codegen.Target.Cedar) ~seed
    ~size_jitter ~batch i =
  let rng = Random.State.make [| seed; i |] in
  let corpus = Array.of_list (corpus ()) in
  (* draw [batch] distinct workloads: partial Fisher-Yates over a copy
     (distinct program-unit names keep the interprocedural pass honest) *)
  let k = max 1 (min batch (Array.length corpus)) in
  let pool = Array.copy corpus in
  for j = 0 to k - 1 do
    let pick = j + Random.State.int rng (Array.length pool - j) in
    let tmp = pool.(j) in
    pool.(j) <- pool.(pick);
    pool.(pick) <- tmp
  done;
  let picks = Array.to_list (Array.sub pool 0 k) in
  let sized =
    List.map
      (fun w ->
        ( w,
          w.Workloads.Workload.small_size
          + Random.State.int rng (size_jitter + 1) ))
      picks
  in
  let machine, mlabel =
    if Random.State.bool rng then (Machine.Config.cedar_config1, "c1")
    else (Machine.Config.cedar_config2, "c2")
  in
  let options, tlabel =
    if Random.State.bool rng then (Restructurer.Options.advanced machine, "adv")
    else (Restructurer.Options.auto_1991 machine, "auto")
  in
  let options = { options with Restructurer.Options.validate; target } in
  let head_w, head_n = List.hd sized in
  let name =
    if k = 1 then
      Printf.sprintf "%s/n%d/%s/%s" head_w.Workloads.Workload.name head_n
        tlabel mlabel
    else
      Printf.sprintf "%s+%d/n%d/%s/%s" head_w.Workloads.Workload.name (k - 1)
        head_n tlabel mlabel
  in
  {
    Server.req_name = name;
    req_source =
      String.concat "\n"
        (List.map (fun (w, n) -> w.Workloads.Workload.source n) sized);
    req_options = options;
  }

let run server (cfg : cfg) =
  let t0 = Unix.gettimeofday () in
  let fresh = ref 0
  and cached = ref 0
  and failed = ref 0
  and timeout = ref 0
  and cancelled = ref 0
  and full = ref 0
  and conservative = ref 0
  and passthrough = ref 0
  and errors = ref [] in
  let record name outcome =
    (match outcome with
    | Server.Done { payload; _ } -> (
        match payload.Server.p_rung with
        | Server.Full -> incr full
        | Server.Conservative -> incr conservative
        | Server.Passthrough -> incr passthrough)
    | _ -> ());
    match outcome with
    | Server.Done { cached = true; _ } -> incr cached
    | Server.Done { cached = false; _ } -> incr fresh
    | Server.Failed msg ->
        incr failed;
        if List.length !errors < 10 then errors := (name, msg) :: !errors
    | Server.Timeout -> incr timeout
    | Server.Cancelled -> incr cancelled
  in
  (* closed loop: keep [clients] tickets in flight; awaiting the oldest
     and submitting its replacement holds the window size constant *)
  let window = Queue.create () in
  let next = ref 0 in
  let submit_one () =
    let req =
      nth_request ~validate:cfg.validate ~target:cfg.target ~seed:cfg.seed
        ~size_jitter:cfg.size_jitter ~batch:cfg.batch !next
    in
    incr next;
    Queue.push (req.Server.req_name, Server.submit server req) window
  in
  while !next < cfg.requests && Queue.length window < cfg.clients do
    submit_one ()
  done;
  while not (Queue.is_empty window) do
    let name, ticket = Queue.pop window in
    record name (Server.await ticket);
    if !next < cfg.requests then submit_one ()
  done;
  {
    s_requests = cfg.requests;
    s_fresh = !fresh;
    s_cached = !cached;
    s_failed = !failed;
    s_timeout = !timeout;
    s_cancelled = !cancelled;
    s_full = !full;
    s_conservative = !conservative;
    s_passthrough = !passthrough;
    s_wall_s = Unix.gettimeofday () -. t0;
    s_errors = List.rev !errors;
  }

let summary_to_string s =
  let base =
    Printf.sprintf
      "%d requests in %.2f s (%.1f jobs/s): %d fresh, %d cached, %d failed, %d timeout, %d cancelled"
      s.s_requests s.s_wall_s
      (if s.s_wall_s > 0.0 then float_of_int s.s_requests /. s.s_wall_s
       else 0.0)
      s.s_fresh s.s_cached s.s_failed s.s_timeout s.s_cancelled
  in
  let base =
    if s.s_conservative > 0 || s.s_passthrough > 0 then
      base
      ^ Printf.sprintf "\nrungs: %d full, %d conservative, %d passthrough"
          s.s_full s.s_conservative s.s_passthrough
    else base
  in
  match s.s_errors with
  | [] -> base
  | errs ->
      base ^ "\n"
      ^ String.concat "\n"
          (List.map (fun (n, m) -> Printf.sprintf "  FAIL %s: %s" n m) errs)
