type t = {
  shard_id : string;
  submitted : int;
  completed : int;
  failed : int;
  timed_out : int;
  cancelled : int;
  retries : int;
  rung_full : int;
  rung_conservative : int;
  rung_passthrough : int;
  degraded : int;
  respawns : int;
  corrupt_dropped : int;
  breaker_opened : int;
  replica_admitted : int;
  replica_rejected : int;
  replicated_hits : int;
  replica_pushed : int;
  replica_skipped_down : int;
  replica_gc : int;
  memo_hits : int;
  memo_misses : int;
  memo_entries : int;
  breaker_state : string;
  faults_injected : int;
  queue_high_water : int;
  cache : Cache.stats;
  cache_hit_rate : float;
  p50_latency_ms : float;
  p95_latency_ms : float;
  max_latency_ms : float;
  latency_count : int;
  wall_s : float;
  throughput : float;
}

(* nearest-rank: the ceil(p/100 * n)-th smallest value *)
let percentile p xs =
  match xs with
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int n))
      in
      a.(max 0 (min (n - 1) (rank - 1)))

let make ?(shard_id = "") ?(replica_admitted = 0) ?(replica_rejected = 0)
    ?(replicated_hits = 0) ?(replica_pushed = 0) ?(replica_skipped_down = 0)
    ?(replica_gc = 0) ?(memo_hits = 0) ?(memo_misses = 0) ?(memo_entries = 0)
    ~submitted ~completed ~failed ~timed_out
    ~cancelled ~retries
    ~rung_full ~rung_conservative ~rung_passthrough ~degraded ~respawns
    ~corrupt_dropped ~breaker_opened ~breaker_state ~faults_injected
    ~queue_high_water ~cache ~latencies_ms ~latency_count ~max_latency_ms
    ~wall_s () =
  {
    shard_id;
    submitted;
    completed;
    failed;
    timed_out;
    cancelled;
    retries;
    rung_full;
    rung_conservative;
    rung_passthrough;
    degraded;
    respawns;
    corrupt_dropped;
    breaker_opened;
    replica_admitted;
    replica_rejected;
    replicated_hits;
    replica_pushed;
    replica_skipped_down;
    replica_gc;
    memo_hits;
    memo_misses;
    memo_entries;
    breaker_state;
    faults_injected;
    queue_high_water;
    cache;
    cache_hit_rate = Cache.hit_rate cache;
    p50_latency_ms = percentile 50.0 latencies_ms;
    p95_latency_ms = percentile 95.0 latencies_ms;
    max_latency_ms;
    latency_count;
    wall_s;
    throughput =
      (if wall_s > 0.0 then float_of_int completed /. wall_s else 0.0);
  }

let to_string s =
  let lines =
    [
      Printf.sprintf "jobs        submitted %d  completed %d  failed %d  timeout %d  cancelled %d"
        s.submitted s.completed s.failed s.timed_out s.cancelled;
      Printf.sprintf "rungs       full %d  conservative %d  passthrough %d  (retries %d)"
        s.rung_full s.rung_conservative s.rung_passthrough s.retries;
      Printf.sprintf "queue       high-water depth %d" s.queue_high_water;
      Printf.sprintf "cache       %d hits  %d misses  %d evictions  %d resident  (hit rate %.1f%%)"
        s.cache.Cache.hits s.cache.Cache.misses s.cache.Cache.evictions
        s.cache.Cache.entries (100.0 *. s.cache_hit_rate);
      Printf.sprintf "memo        %d hits  %d misses  %d resident nests"
        s.memo_hits s.memo_misses s.memo_entries;
      Printf.sprintf "latency     p50 %.2f ms  p95 %.2f ms  max %.2f ms  (%d samples)"
        s.p50_latency_ms s.p95_latency_ms s.max_latency_ms s.latency_count;
      Printf.sprintf "throughput  %.1f jobs/s over %.2f s" s.throughput s.wall_s;
    ]
  in
  (* cluster lines only appear on clustered shards *)
  let cluster =
    (if s.shard_id <> "" then
       [ Printf.sprintf "shard       %s" s.shard_id ]
     else [])
    @
    if
      s.replica_admitted > 0 || s.replica_rejected > 0
      || s.replicated_hits > 0 || s.replica_pushed > 0
      || s.replica_skipped_down > 0 || s.replica_gc > 0
    then
      [
        Printf.sprintf
          "replication pushed %d  skipped-down %d  admitted %d  rejected %d  \
           hits-from-replica %d  gc-dropped %d"
          s.replica_pushed s.replica_skipped_down s.replica_admitted
          s.replica_rejected s.replicated_hits s.replica_gc;
      ]
    else []
  in
  (* the survival line only appears when something needed surviving *)
  let survival =
    if
      s.respawns > 0 || s.degraded > 0 || s.corrupt_dropped > 0
      || s.breaker_opened > 0 || s.faults_injected > 0
      || s.breaker_state <> "closed"
    then
      [
        Printf.sprintf
          "survival    respawns %d  degraded %d  corrupt-dropped %d  breaker opened %d (now %s)  faults injected %d"
          s.respawns s.degraded s.corrupt_dropped s.breaker_opened
          s.breaker_state s.faults_injected;
      ]
    else []
  in
  String.concat "\n" (lines @ cluster @ survival)

(* hand-rolled JSON: the only strings that ride in are shard ids and
   breaker states, but escape them anyway so the emitter is total *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json s =
  let i name v = Printf.sprintf "\"%s\":%d" name v in
  let f name v =
    (* %.17g would be exact but noisy; 6 significant digits is plenty
       for rates and millisecond latencies *)
    Printf.sprintf "\"%s\":%.6g" name v
  in
  let str name v = Printf.sprintf "\"%s\":\"%s\"" name (json_escape v) in
  let fields =
    [
      str "shard_id" s.shard_id;
      i "submitted" s.submitted;
      i "completed" s.completed;
      i "failed" s.failed;
      i "timed_out" s.timed_out;
      i "cancelled" s.cancelled;
      i "retries" s.retries;
      i "rung_full" s.rung_full;
      i "rung_conservative" s.rung_conservative;
      i "rung_passthrough" s.rung_passthrough;
      i "degraded" s.degraded;
      i "respawns" s.respawns;
      i "corrupt_dropped" s.corrupt_dropped;
      i "breaker_opened" s.breaker_opened;
      i "replica_admitted" s.replica_admitted;
      i "replica_rejected" s.replica_rejected;
      i "replicated_hits" s.replicated_hits;
      i "replica_pushed" s.replica_pushed;
      i "replica_skipped_down" s.replica_skipped_down;
      i "replica_gc" s.replica_gc;
      i "memo_hits" s.memo_hits;
      i "memo_misses" s.memo_misses;
      i "memo_entries" s.memo_entries;
      str "breaker_state" s.breaker_state;
      i "faults_injected" s.faults_injected;
      i "queue_high_water" s.queue_high_water;
      i "cache_hits" s.cache.Cache.hits;
      i "cache_misses" s.cache.Cache.misses;
      i "cache_evictions" s.cache.Cache.evictions;
      i "cache_entries" s.cache.Cache.entries;
      f "cache_hit_rate" s.cache_hit_rate;
      f "p50_latency_ms" s.p50_latency_ms;
      f "p95_latency_ms" s.p95_latency_ms;
      f "max_latency_ms" s.max_latency_ms;
      i "latency_count" s.latency_count;
      f "wall_s" s.wall_s;
      f "throughput" s.throughput;
    ]
  in
  "{" ^ String.concat "," fields ^ "}"
