type t = {
  submitted : int;
  completed : int;
  failed : int;
  timed_out : int;
  cancelled : int;
  retries : int;
  rung_full : int;
  rung_conservative : int;
  rung_passthrough : int;
  degraded : int;
  respawns : int;
  corrupt_dropped : int;
  breaker_opened : int;
  breaker_state : string;
  faults_injected : int;
  queue_high_water : int;
  cache : Cache.stats;
  cache_hit_rate : float;
  p50_latency_ms : float;
  p95_latency_ms : float;
  max_latency_ms : float;
  latency_count : int;
  wall_s : float;
  throughput : float;
}

(* nearest-rank: the ceil(p/100 * n)-th smallest value *)
let percentile p xs =
  match xs with
  | [] -> 0.0
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let rank =
        int_of_float (ceil (p /. 100.0 *. float_of_int n))
      in
      a.(max 0 (min (n - 1) (rank - 1)))

let make ~submitted ~completed ~failed ~timed_out ~cancelled ~retries
    ~rung_full ~rung_conservative ~rung_passthrough ~degraded ~respawns
    ~corrupt_dropped ~breaker_opened ~breaker_state ~faults_injected
    ~queue_high_water ~cache ~latencies_ms ~latency_count ~max_latency_ms
    ~wall_s =
  {
    submitted;
    completed;
    failed;
    timed_out;
    cancelled;
    retries;
    rung_full;
    rung_conservative;
    rung_passthrough;
    degraded;
    respawns;
    corrupt_dropped;
    breaker_opened;
    breaker_state;
    faults_injected;
    queue_high_water;
    cache;
    cache_hit_rate = Cache.hit_rate cache;
    p50_latency_ms = percentile 50.0 latencies_ms;
    p95_latency_ms = percentile 95.0 latencies_ms;
    max_latency_ms;
    latency_count;
    wall_s;
    throughput =
      (if wall_s > 0.0 then float_of_int completed /. wall_s else 0.0);
  }

let to_string s =
  let lines =
    [
      Printf.sprintf "jobs        submitted %d  completed %d  failed %d  timeout %d  cancelled %d"
        s.submitted s.completed s.failed s.timed_out s.cancelled;
      Printf.sprintf "rungs       full %d  conservative %d  passthrough %d  (retries %d)"
        s.rung_full s.rung_conservative s.rung_passthrough s.retries;
      Printf.sprintf "queue       high-water depth %d" s.queue_high_water;
      Printf.sprintf "cache       %d hits  %d misses  %d evictions  %d resident  (hit rate %.1f%%)"
        s.cache.Cache.hits s.cache.Cache.misses s.cache.Cache.evictions
        s.cache.Cache.entries (100.0 *. s.cache_hit_rate);
      Printf.sprintf "latency     p50 %.2f ms  p95 %.2f ms  max %.2f ms  (%d samples)"
        s.p50_latency_ms s.p95_latency_ms s.max_latency_ms s.latency_count;
      Printf.sprintf "throughput  %.1f jobs/s over %.2f s" s.throughput s.wall_s;
    ]
  in
  (* the survival line only appears when something needed surviving *)
  let survival =
    if
      s.respawns > 0 || s.degraded > 0 || s.corrupt_dropped > 0
      || s.breaker_opened > 0 || s.faults_injected > 0
      || s.breaker_state <> "closed"
    then
      [
        Printf.sprintf
          "survival    respawns %d  degraded %d  corrupt-dropped %d  breaker opened %d (now %s)  faults injected %d"
          s.respawns s.degraded s.corrupt_dropped s.breaker_opened
          s.breaker_state s.faults_injected;
      ]
    else []
  in
  String.concat "\n" (lines @ survival)
