(** Seeded, deterministic fault injector — the chaos harness threaded
    through the server's queue, cache, restructure stage, and validator
    gate.

    Each fault {!site} has a probability; the server asks {!fire} at the
    matching point of the job lifecycle and, when told to, forces the
    failure: raises {!Injected}, sleeps, kills the worker domain,
    corrupts the cached payload text, or rejects a correct result.
    Decision [n] for a site is a pure function of (seed, site, [n]), so
    the same seed reproduces the same per-site fault schedule regardless
    of how worker domains interleave — and a one-worker run is fully
    deterministic end to end.

    By default injected faults are {e visible}: the server tags the job
    as chaos-tainted and the circuit breaker ignores its failures
    (synthetic faults must not degrade real capability).  Under
    [stealth] the marker is suppressed and injected faults are
    indistinguishable from real ones — the mode used to exercise the
    breaker itself. *)

type site =
  | Exec_raise  (** exception from deep inside the restructure stage *)
  | Exec_delay  (** artificial latency before restructuring *)
  | Worker_kill  (** domain death: escapes the job's exception barrier *)
  | Cache_corrupt  (** flip a byte of the payload text stored in the cache *)
  | Memo_corrupt  (** poison a nest entry as the restructurer memo stores it *)
  | Validator_reject  (** spurious rejection of a correct result *)
  | Accept_drop  (** close an accepted connection before reading anything *)
  | Read_stall  (** stall the server's frame reader (client sees latency) *)
  | Trunc_write  (** cut a reply frame short and drop the connection *)
  | Garbage_frame  (** replace a reply frame with bytes that decode to junk *)

exception Injected of site
(** Raised by the server at a site the injector told to fire. *)

val all_sites : site list

val service_sites : site list
(** The in-process job-lifecycle sites ([all] in a [--chaos] spec). *)

val net_sites : site list
(** The wire sites a {!Net.Server} attacks ([net] in a [--chaos] spec). *)

val site_name : site -> string

type t

val none : t
(** The inactive injector: {!fire} always answers [false], no counters. *)

val create :
  ?seed:int -> ?stealth:bool -> ?delay_ms:float -> (site * float) list -> t
(** [create sites] with per-site probabilities; unlisted sites never
    fire.  [delay_ms] is the latency injected at {!Exec_delay} (default
    5ms).  @raise Invalid_argument on a probability outside [0,1]. *)

val active : t -> bool
(** Any site with a nonzero probability? *)

val stealth : t -> bool
val delay_s : t -> float

val set_prob : t -> site -> float -> unit
(** Change a site's probability mid-run (tests: let a "failing" stage
    recover so the breaker's half-open probe can succeed). *)

val fire : t -> site -> bool
(** Should this site's fault fire now?  Counts a draw; deterministic in
    (seed, site, draw number). *)

val log : t -> (site * int * int) list
(** Per site: (site, draws, fired). *)

val total_fired : t -> int
val log_to_string : t -> string

val parse_spec : string -> ((site * float) list, string) result
(** Parse a [--chaos] spec: comma-separated [site=prob] with sites
    [raise], [delay], [kill], [corrupt], [memo-corrupt], [reject],
    [accept-drop],
    [read-stall], [trunc-write], [garbage-frame], [all] (every
    in-process site at once) or [net] (every wire site at once),
    e.g. ["all=0.1"], ["net=0.05"] or ["raise=0.2,kill=0.05"]. *)
