(** Service-lifetime statistics, assembled at shutdown. *)

type t = {
  shard_id : string;  (** cluster shard identity; [""] outside a cluster *)
  submitted : int;
  completed : int;  (** finished with a result (fresh or cached) *)
  failed : int;  (** parse/restructure/model errors, after the ladder *)
  timed_out : int;  (** started but exceeded the deadline, after retries *)
  cancelled : int;  (** expired in the queue, never started *)
  retries : int;  (** ladder descents plus dead-worker requeues *)
  rung_full : int;  (** [Done] payloads produced with full techniques *)
  rung_conservative : int;  (** [Done] payloads from the conservative rung *)
  rung_passthrough : int;  (** [Done] payloads that are serial passthrough *)
  degraded : int;  (** jobs served passthrough because the breaker was open *)
  respawns : int;  (** worker domains replaced by the supervisor *)
  corrupt_dropped : int;  (** cache entries failing their integrity check *)
  breaker_opened : int;  (** closed/half-open -> open transitions *)
  replica_admitted : int;  (** warm-cache pushes admitted from ring peers *)
  replica_rejected : int;  (** pushes rejected (checksum mismatch or rung) *)
  replicated_hits : int;  (** cache hits served from a replicated entry *)
  replica_pushed : int;  (** warm-cache entries this shard pushed to peers *)
  replica_skipped_down : int;
      (** outbound pushes skipped because the target was held down *)
  replica_gc : int;
      (** replicated entries dropped because ring ownership moved away *)
  memo_hits : int;  (** restructurer nest-memo hits, all jobs *)
  memo_misses : int;  (** restructurer nest-memo misses, all jobs *)
  memo_entries : int;  (** nests resident in the memo at snapshot *)
  breaker_state : string;  (** "closed" / "open" / "half-open" at snapshot *)
  faults_injected : int;  (** total chaos faults fired, all sites *)
  queue_high_water : int;
  cache : Cache.stats;
  cache_hit_rate : float;  (** hits over lookups, in [0,1] *)
  p50_latency_ms : float;
      (** submit-to-result, all outcomes; estimated from a fixed-size
          reservoir sample, so memory stays bounded at any job count *)
  p95_latency_ms : float;
  max_latency_ms : float;  (** exact (tracked outside the sample) *)
  latency_count : int;  (** exact number of latencies observed *)
  wall_s : float;  (** service lifetime, create to shutdown *)
  throughput : float;  (** completed jobs per wall-clock second *)
}

val percentile : float -> float list -> float
(** [percentile p xs]: the [p]-th percentile ([0..100]) of [xs] by
    nearest-rank; 0 on the empty list. *)

val make :
  ?shard_id:string ->
  ?replica_admitted:int ->
  ?replica_rejected:int ->
  ?replicated_hits:int ->
  ?replica_pushed:int ->
  ?replica_skipped_down:int ->
  ?replica_gc:int ->
  ?memo_hits:int ->
  ?memo_misses:int ->
  ?memo_entries:int ->
  submitted:int ->
  completed:int ->
  failed:int ->
  timed_out:int ->
  cancelled:int ->
  retries:int ->
  rung_full:int ->
  rung_conservative:int ->
  rung_passthrough:int ->
  degraded:int ->
  respawns:int ->
  corrupt_dropped:int ->
  breaker_opened:int ->
  breaker_state:string ->
  faults_injected:int ->
  queue_high_water:int ->
  cache:Cache.stats ->
  latencies_ms:float list ->
  latency_count:int ->
  max_latency_ms:float ->
  wall_s:float ->
  unit ->
  t
(** [latencies_ms] is a (possibly sampled) list used for the
    percentiles; [latency_count] and [max_latency_ms] are the exact
    values tracked alongside the sample.  The optional cluster fields
    default to a standalone, non-replicating shard. *)

val to_string : t -> string
(** Multi-line human-readable summary, printed on shutdown.  A
    "survival" line is appended only when faults were injected or any
    self-healing machinery engaged; shard/replication lines only when
    clustered. *)

val to_json : t -> string
(** The same snapshot as one flat JSON object, for [cedarctl --json]
    and the proxy's cluster-wide aggregation.  Self-contained emitter
    (no JSON library); strings are escaped. *)
