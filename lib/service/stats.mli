(** Service-lifetime statistics, assembled at shutdown. *)

type t = {
  submitted : int;
  completed : int;  (** finished with a result (fresh or cached) *)
  failed : int;  (** parse/restructure/model errors *)
  timed_out : int;  (** started but exceeded the deadline *)
  cancelled : int;  (** expired in the queue, never started *)
  queue_high_water : int;
  cache : Cache.stats;
  cache_hit_rate : float;  (** hits over lookups, in [0,1] *)
  p50_latency_ms : float;  (** submit-to-result, all outcomes *)
  p95_latency_ms : float;
  max_latency_ms : float;
  wall_s : float;  (** service lifetime, create to shutdown *)
  throughput : float;  (** completed jobs per wall-clock second *)
}

val percentile : float -> float list -> float
(** [percentile p xs]: the [p]-th percentile ([0..100]) of [xs] by
    nearest-rank; 0 on the empty list. *)

val make :
  submitted:int ->
  completed:int ->
  failed:int ->
  timed_out:int ->
  cancelled:int ->
  queue_high_water:int ->
  cache:Cache.stats ->
  latencies_ms:float list ->
  wall_s:float ->
  t

val to_string : t -> string
(** Multi-line human-readable summary, printed on shutdown. *)
