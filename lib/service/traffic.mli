(** Closed-loop traffic generator over the [lib/workloads] corpus.

    Replays the linear-algebra and Perfect-club sources against a running
    {!Server}: a seeded RNG draws (workload, problem size, technique set,
    machine) per request, and [clients] requests are kept outstanding at
    all times — each completion immediately triggers the next submission,
    the classic closed-loop client model.  The same seed yields the same
    request sequence, making A/B runs (e.g. 1 worker vs 4) comparable. *)

type cfg = {
  requests : int;  (** total jobs to issue *)
  clients : int;  (** outstanding jobs kept in flight *)
  seed : int;
  size_jitter : int;
      (** problem sizes are drawn from [small_size .. small_size+jitter];
          0 maximizes cache hits, larger values spread the key space *)
  batch : int;
      (** corpus sources concatenated per request (a whole-application
          compile job); larger batches mean heavier, better-parallelizing
          jobs *)
  validate : bool;
      (** request [Options.validate] on every job: the driver demotes
          loops the independent checker rejects and the server refuses
          to cache or return unverified output *)
  target : Codegen.Target.t;
      (** codegen target requested on every job (default Cedar) *)
}

type summary = {
  s_requests : int;
  s_fresh : int;  (** completed by running the restructurer *)
  s_cached : int;  (** completed from the result cache *)
  s_failed : int;
  s_timeout : int;
  s_cancelled : int;
  s_full : int;  (** [Done] payloads produced at the full rung *)
  s_conservative : int;  (** [Done] payloads from the conservative rung *)
  s_passthrough : int;  (** [Done] payloads that are serial passthrough *)
  s_wall_s : float;
  s_errors : (string * string) list;  (** (request name, message), capped *)
}

val default_cfg : cfg
(** 200 requests, 8 clients, seed 42, jitter 4, batch 4, no validation. *)

val corpus : unit -> Workloads.Workload.t list
(** The replayed programs: all of [Workloads.Linalg] and
    [Workloads.Perfect]. *)

val nth_request :
  ?validate:bool ->
  ?target:Codegen.Target.t ->
  seed:int ->
  size_jitter:int ->
  batch:int ->
  int ->
  Server.request
(** The [i]-th request of the sequence for [seed] — deterministic, so a
    replayed index collides with the original in the cache. *)

val run : Server.t -> cfg -> summary
(** Drive the server; returns when all [requests] have resolved. *)

val summary_to_string : summary -> string
