(* Bounded blocking queue: one mutex, two conditions (not_empty for
   consumers, not_full for producers).  See bounded_queue.mli. *)

type 'a t = {
  items : 'a Queue.t;
  capacity : int;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
  mutable high_water : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity < 1";
  {
    items = Queue.create ();
    capacity;
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    closed = false;
    high_water = 0;
  }

let with_lock q f =
  Mutex.lock q.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.mutex) f

let push q x =
  with_lock q (fun () ->
      while (not q.closed) && Queue.length q.items >= q.capacity do
        Condition.wait q.not_full q.mutex
      done;
      if q.closed then false
      else begin
        Queue.push x q.items;
        q.high_water <- max q.high_water (Queue.length q.items);
        Condition.signal q.not_empty;
        true
      end)

let try_push q x =
  with_lock q (fun () ->
      if q.closed || Queue.length q.items >= q.capacity then false
      else begin
        Queue.push x q.items;
        q.high_water <- max q.high_water (Queue.length q.items);
        Condition.signal q.not_empty;
        true
      end)

let pop q =
  with_lock q (fun () ->
      while Queue.is_empty q.items && not q.closed do
        Condition.wait q.not_empty q.mutex
      done;
      match Queue.take_opt q.items with
      | Some x ->
          Condition.signal q.not_full;
          Some x
      | None -> None (* closed and drained *))

let close q =
  with_lock q (fun () ->
      q.closed <- true;
      Condition.broadcast q.not_empty;
      Condition.broadcast q.not_full)

let length q = with_lock q (fun () -> Queue.length q.items)
let high_water q = with_lock q (fun () -> q.high_water)
