(** The restructuring server: a pool of OCaml 5 [Domain] workers fed by a
    bounded job queue.

    A job carries fortran77 source plus a {!Restructurer.Options.t};
    workers parse, restructure, print, and attach a {!Perfmodel} cycle
    estimate.  Results land in a content-addressed LRU cache keyed by
    (source, options, machine), so an identical request short-circuits
    without re-running the restructurer.  Every job has a wall-clock
    deadline: jobs that expire while queued come back [Cancelled] without
    running; jobs that exceed it while running are abandoned at the next
    loop-nest boundary and come back [Timeout] — one pathological program
    cannot wedge a worker. *)

type request = {
  req_name : string;  (** label for reporting, e.g. the workload name *)
  req_source : string;  (** fortran77 source text *)
  req_options : Restructurer.Options.t;
}

type payload = {
  p_name : string;
  p_text : string;  (** printed Cedar Fortran *)
  p_reports : Restructurer.Driver.loop_report list;
  p_cycles : float option;  (** perfmodel estimate; [None] if the model
                                does not apply (e.g. no PROGRAM unit) *)
  p_global_words : float option;
}

type outcome =
  | Done of { payload : payload; cached : bool }
  | Failed of string  (** parse or restructure error *)
  | Timeout  (** started, but exceeded the deadline *)
  | Cancelled  (** expired in the queue (or queue closed): never ran *)

type ticket
(** Handle to one submitted job. *)

type t

val cache_key : request -> string
(** The content address: digest of source + options + machine config. *)

val create :
  ?queue_capacity:int ->
  ?timeout_ms:float ->
  ?oversubscribe:bool ->
  workers:int ->
  cache_capacity:int ->
  unit ->
  t
(** Start [workers] domains ([>= 1] enforced).  Unless [oversubscribe]
    is set, the pool is capped at [Domain.recommended_domain_count] —
    extra domains on an oversubscribed host only add stop-the-world GC
    barrier cost.  [queue_capacity] bounds the backlog (default 64).
    [timeout_ms <= 0] (the default) means no deadline. *)

val effective_workers : t -> int
(** Domains actually running (after the oversubscription cap). *)

val submit : t -> request -> ticket
(** Enqueue a job; blocks while the queue is full (closed-loop
    backpressure).  On a closed server the ticket resolves [Cancelled]. *)

val await : ticket -> outcome
(** Block until the job resolves. *)

val run : t -> request -> outcome
(** [submit] then [await]: the synchronous client. *)

val stats : t -> Stats.t
(** Snapshot of the counters so far. *)

val shutdown : t -> Stats.t
(** Stop accepting jobs, drain the queue, join every worker domain, and
    return the final statistics. *)
