(** The restructuring server: a self-healing pool of OCaml 5 [Domain]
    workers fed by a bounded job queue.

    A job carries fortran77 source plus a {!Restructurer.Options.t};
    workers parse, restructure, print, and attach a {!Perfmodel} cycle
    estimate.  Results land in a content-addressed LRU cache keyed by
    (source, options, machine) — entries are checksummed at insertion
    and verified on every hit, so a corrupted entry is dropped and
    recomputed rather than served.  Every job has a wall-clock deadline:
    jobs that expire while queued come back [Cancelled] without running;
    jobs that exceed it while running are abandoned at the next
    interrupt poll and come back [Timeout].

    The pool survives its own failures:

    - {b Exception barrier}: any exception raised while executing a job
      (an [assert false] deep in a transform, a model error) resolves
      that job [Failed] with a captured backtrace; it never unwinds the
      worker.
    - {b Degradation ladder}: a failed, timed-out, or
      validator-rejected attempt is retried with exponential backoff at
      a cheaper rung — full techniques, then a conservative set (no
      DOACROSS, no generalized-induction substitution, no two-version
      run-time tests), then parse-and-print serial passthrough.  Each
      [Done] payload is tagged with the rung that produced it; only
      full-rung results are cached.
    - {b Supervision}: a supervisor domain watches per-worker
      heartbeats.  A worker killed by an escaping exception (chaos
      injection is the only source) is joined and respawned; its
      in-flight job is requeued once, or resolved [Failed] — never
      leaked.  Optionally, a worker silent long past its job's deadline
      is declared wedged: its job resolves [Timeout], the slot is
      respawned, and the stuck domain is orphaned until it exits on its
      own (the fuel counter in the analysis hot loops guarantees it
      does).
    - {b Circuit breaker}: after [breaker_threshold] consecutive {e
      real} (non-injected) restructure failures the breaker opens and
      jobs are served serial passthrough directly — degraded but alive.
      After [breaker_cooldown_ms] one probe job runs the full ladder;
      success closes the breaker, failure re-opens it.

    Chaos faults from an attached {!Fault} injector taint the jobs they
    strike (unless the injector is in stealth mode), and tainted
    failures never count toward the breaker — injected chaos must not
    convince the service that its restructurer is broken. *)

type request = {
  req_name : string;  (** label for reporting, e.g. the workload name *)
  req_source : string;  (** fortran77 source text *)
  req_options : Restructurer.Options.t;
}

type rung =
  | Full  (** every configured technique *)
  | Conservative
      (** techniques minus DOACROSS / GIV substitution / run-time
          dependence tests *)
  | Passthrough  (** parse-and-print serial identity: the reliable floor *)

val rung_name : rung -> string
(** ["full" | "conservative" | "passthrough"] *)

type payload = {
  p_name : string;
  p_text : string;  (** printed Cedar Fortran *)
  p_reports : Restructurer.Driver.loop_report list;
      (** empty for passthrough payloads *)
  p_cycles : float option;  (** perfmodel estimate; [None] if the model
                                does not apply (e.g. no PROGRAM unit) *)
  p_global_words : float option;
  p_rung : rung;  (** the ladder rung that produced this payload *)
}

type outcome =
  | Done of { payload : payload; cached : bool }
  | Failed of string  (** parse or restructure error (after the ladder) *)
  | Timeout  (** started, but exceeded the deadline (after retries) *)
  | Cancelled  (** expired in the queue (or queue closed): never ran *)

type ticket
(** Handle to one submitted job. *)

type t

val cache_key : request -> string
(** The content address: digest of source + options + machine config. *)

val create :
  ?queue_capacity:int ->
  ?timeout_ms:float ->
  ?oversubscribe:bool ->
  ?fault:Fault.t ->
  ?retry_base_ms:float ->
  ?breaker_threshold:int ->
  ?breaker_cooldown_ms:float ->
  ?wedge_after_ms:float ->
  ?latency_reservoir:int ->
  ?max_source_bytes:int ->
  ?shard_id:string ->
  ?memo_capacity:int ->
  ?on_cache_fill:(key:string -> digest:string -> payload -> unit) ->
  workers:int ->
  cache_capacity:int ->
  unit ->
  t
(** Start [workers] domains ([>= 1] enforced) plus one supervisor
    domain.  Unless [oversubscribe] is set, the pool is capped at
    [Domain.recommended_domain_count] — extra domains on an
    oversubscribed host only add stop-the-world GC barrier cost.
    [queue_capacity] bounds the backlog (default 64).  [timeout_ms <= 0]
    (the default) means no deadline.

    [fault] attaches a chaos injector (default {!Fault.none}: no
    overhead beyond one branch per site).  [retry_base_ms] (default 1)
    is the backoff unit: descent [k] of the ladder sleeps
    [retry_base_ms * 2^k] before retrying.  [breaker_threshold]
    (default 5) consecutive real restructure failures open the breaker;
    [breaker_cooldown_ms] (default 250) is the open-to-half-open timer.
    [wedge_after_ms <= 0] (the default) disables heartbeat wedge
    detection.  [latency_reservoir] (default 1024) bounds the latency
    sample size.  [max_source_bytes > 0] rejects any request whose
    source exceeds the cap — resolved [Failed] with a typed message
    before the text ever reaches a parser ([0], the default, means
    unlimited).

    [memo_capacity] (default 1024) bounds the nest-level restructurer
    memo shared by every worker: per-loop-nest analysis/transformation
    results keyed by the normalized nest, replayed byte-identically for
    every later job containing an equivalent nest ([<= 0] disables it).
    The chaos injector's [memo-corrupt] site poisons entries as they are
    stored; poisoned output is caught by the validator gate when
    [validate] is on and demoted down the ladder, never cached.

    [shard_id] names this server inside a cluster (shows up in
    {!Stats.t}; default [""] = standalone).  [on_cache_fill] fires after
    each {e fresh} full-rung result is cached, with the content key, the
    payload-text digest, and the clean payload — the cluster replicator
    hangs off this.  It never fires for entries admitted via
    {!admit_replica}, and an exception it raises is swallowed (a
    replication hiccup must not fail the job that filled the cache). *)

val admit_replica : t -> key:string -> digest:string -> payload -> bool
(** Admit a warm-cache entry replicated from a ring peer.  The digest
    is recomputed from the payload text and the push is rejected on
    mismatch (corrupt in flight), as well as for non-[Full] rungs.
    Returns whether the entry was admitted; either way the replication
    counters in {!Stats.t} advance.  Admission inserts with normal LRU
    semantics — a replica can evict, and be evicted like, any other
    entry. *)

val gc_replicas : t -> keep:(string -> bool) -> int
(** Drop every {e replica-flagged} cache entry whose key fails [keep],
    returning how many were dropped.  The cluster replicator calls this
    on a topology change with [keep key = ] "this shard still backs
    [key] under the new ring", so an ex-successor does not serve (or
    shadow) entries it no longer owns.  Locally computed entries are
    never touched.  Counted in {!Stats.t}[.replica_gc]. *)

val memo_stats : t -> Restructurer.Memo.stats option
(** Counters of the shared nest-level memo; [None] when the memo was
    disabled at {!create}. *)

val export_cache : t -> (string * string * payload) list
(** Every resident cache entry as [(key, digest, payload)], recency
    untouched — what the cluster replicator re-pushes when the ring
    changes so placement converges without recomputation. *)

val set_replication_source : t -> (unit -> int * int) -> unit
(** Wire the outbound-replication counters [(pushed, skipped_down)]
    into {!stats} (cedard calls this when a replicator is attached). *)

val effective_workers : t -> int
(** Worker slots in the pool (after the oversubscription cap). *)

val submit : ?trace:int -> t -> request -> ticket
(** Enqueue a job; blocks while the queue is full (closed-loop
    backpressure).  On a closed server the ticket resolves [Cancelled].
    [trace] carries a caller-minted {!Obs.Trace} id (e.g. one received
    over the wire) onto the ticket; when omitted (or [0]) a fresh id is
    minted iff tracing is enabled. *)

val try_submit : ?trace:int -> t -> request -> ticket option
(** Non-blocking {!submit} for front-ends that shed load instead of
    queuing on backpressure: [None] means the queue had no room (or the
    server was shutting down) and nothing was enqueued. *)

val await : ticket -> outcome
(** Block until the job resolves.  Every submitted ticket resolves,
    whatever happens to the worker that picked it up. *)

val on_resolve : ticket -> (outcome -> unit) -> unit
(** Register a completion callback instead of blocking: fires exactly
    once, on whatever thread resolves the ticket — or immediately on the
    caller if the ticket already resolved (cache hits resolve inside
    submit).  This is the non-blocking half of the fiber front-end's
    completion-queue bridge: the callback typically posts a wakeup into
    an [Aio] scheduler.  Callbacks run outside the ticket lock and must
    not call {!await} on the same ticket. *)

val run : t -> request -> outcome
(** [submit] then [await]: the synchronous client. *)

val stats : t -> Stats.t
(** Snapshot of the counters so far. *)

val shutdown : t -> Stats.t
(** Deterministic drain: (1) close the queue, so every later submit
    resolves [Cancelled]; (2) stop and join the supervisor; (3) join the
    workers — they finish in-flight and already-queued jobs first;
    (4) salvage anything dead workers or orphans left behind; (5) return
    the final statistics.  Idempotent — a second (e.g. signal-path)
    caller just gets the statistics. *)
