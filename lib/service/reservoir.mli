(** Fixed-size uniform reservoir sample (Vitter's Algorithm R), seeded.

    The server's latency record: a soak run of millions of jobs keeps a
    bounded, uniformly drawn sample for the percentile estimates instead
    of an ever-growing list, so service memory stays flat.  The exact
    observation count and maximum are tracked separately (the max would
    otherwise be lost to sampling).  Not thread-safe — callers serialize
    behind their own lock, as the server does with its stats mutex. *)

type t

val create : ?seed:int -> capacity:int -> unit -> t
(** @raise Invalid_argument when [capacity < 1] *)

val add : t -> float -> unit
(** Offer one observation: kept outright while the reservoir is filling,
    then replaces a random slot with probability [capacity/count]. *)

val count : t -> int
(** Observations ever offered (not the sample size). *)

val max_value : t -> float
(** Exact maximum of every observation offered; 0 before the first. *)

val sample : t -> float list
(** The current sample, at most [capacity] values, unordered. *)
