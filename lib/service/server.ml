(* Worker-pool restructuring server.  See server.mli for the contract.

   Concurrency structure: submitters and workers meet at a
   Bounded_queue of tickets; each ticket carries its own mutex/condition
   pair for the await rendezvous; service-wide counters live behind one
   stats mutex; the worker slots and orphan list behind a pool mutex.

   Robustness structure (inside-out):
   - every job attempt runs under an exception barrier, so an
     [assert false] deep in a transform becomes [Failed] with a captured
     backtrace instead of a dead domain;
   - a failed/timed-out/validator-rejected attempt retries down a
     degradation ladder (full techniques -> conservative set ->
     parse-and-print serial passthrough) with exponential backoff, each
     payload tagged with the rung that produced it;
   - an exception that escapes the barrier anyway (deliberately:
     injected domain death) unwinds the worker; a supervisor domain
     watching per-worker heartbeats joins the corpse, requeues or fails
     its in-flight ticket (never leaks it), and respawns the slot;
   - a circuit breaker counts consecutive real (non-chaos) restructure
     failures and, once open, serves serial passthrough directly —
     degraded but alive — half-opening on a timer to probe recovery;
   - cache entries carry a digest of their payload text; a corrupted
     entry is detected on hit, dropped, and recomputed. *)

type request = {
  req_name : string;
  req_source : string;
  req_options : Restructurer.Options.t;
}

type rung = Full | Conservative | Passthrough

let rung_name = function
  | Full -> "full"
  | Conservative -> "conservative"
  | Passthrough -> "passthrough"

type payload = {
  p_name : string;
  p_text : string;
  p_reports : Restructurer.Driver.loop_report list;
  p_cycles : float option;
  p_global_words : float option;
  p_rung : rung;
}

type outcome =
  | Done of { payload : payload; cached : bool }
  | Failed of string
  | Timeout
  | Cancelled

type ticket = {
  tk_request : request;
  tk_trace : int;  (* trace id minted at submission, 0 when tracing is off *)
  tk_submitted : float;
  mutable tk_deadline : float;  (* refreshed when a retry starts *)
  tk_mutex : Mutex.t;
  tk_cond : Condition.t;
  mutable tk_outcome : outcome option;
  mutable tk_tainted : bool;  (* a visible injected fault touched this job *)
  mutable tk_requeues : int;  (* times requeued after a worker death *)
  mutable tk_watchers : (outcome -> unit) list;
      (* completion callbacks (newest first); fired exactly once, on
         whatever thread wins the resolution *)
}

(* One spawn of one worker.  Fresh per (re)spawn, so a replaced or
   orphaned worker can never scribble on its successor's bookkeeping. *)
type wstate = {
  mutable w_ticket : ticket option;  (* in flight *)
  mutable w_heartbeat : float;
  mutable w_crashed : bool;  (* exited via an escaping exception *)
  mutable w_done : bool;  (* exited (normally or not) *)
}

type slot = {
  mutable s_domain : unit Domain.t option;
  mutable s_state : wstate;
}

type breaker_state = Br_closed | Br_open | Br_half_open

(* cache entries are self-checking: [e_digest] is the digest of the
   payload text at insertion; a mismatch on lookup means the bytes rotted
   (or chaos flipped them) and the entry must not be served *)
type entry = {
  e_digest : string;
  e_payload : payload;
  e_replica : bool;  (* arrived via warm-cache replication, not computed *)
}

type t = {
  queue : ticket Bounded_queue.t;
  cache : entry Cache.t;
  memo : Restructurer.Driver.memo option;
      (** nest-level memo shared by every worker domain; [None] when
          disabled.  Entries are reused across jobs — a nest analyzed
          for one request is replayed for every later request containing
          an equivalent nest, whatever its symbol names. *)
  fault : Fault.t;
  shard_id : string;  (** "" when not part of a cluster *)
  on_cache_fill : (key:string -> digest:string -> payload -> unit) option;
      (** fired after a fresh full-rung result lands in the cache; the
          cluster replicator hangs off this.  Never fired for admitted
          replicas (that would ping-pong entries around the ring). *)
  max_source_bytes : int;  (** 0 = unlimited *)
  timeout_s : float;  (** infinity = no deadline *)
  retry_base_s : float;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  wedge_after_s : float;  (** infinity = wedge detection off *)
  started_at : float;
  stat_mutex : Mutex.t;
  pool_mutex : Mutex.t;
  mutable slots : slot array;
  mutable orphans : (unit Domain.t * wstate) list;
  mutable supervisor : unit Domain.t option;
  mutable stopping : bool;
  mutable shut : bool;  (* a shutdown drain has started (idempotence) *)
  (* counters, under stat_mutex *)
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable timed_out : int;
  mutable cancelled : int;
  mutable retries : int;
  mutable rung_full : int;
  mutable rung_conservative : int;
  mutable rung_passthrough : int;
  mutable degraded : int;  (* jobs served passthrough because breaker open *)
  mutable respawns : int;
  mutable corrupt_dropped : int;
  mutable breaker_opened : int;
  mutable replica_admitted : int;
  mutable replica_rejected : int;  (* checksum mismatch or rung/capacity *)
  mutable replicated_hits : int;  (* cache hits served from a replica *)
  mutable replica_gc : int;  (* replicas dropped because ownership moved *)
  mutable replication_source : (unit -> int * int) option;
      (* outbound replication counters (pushed, skipped_down), wired by
         cedard when a replicator is attached — stats-only *)
  mutable br_state : breaker_state;
  mutable br_failures : int;  (* consecutive real restructure failures *)
  mutable br_opened_at : float;
  latencies : Reservoir.t;
}

(* Options.t is closure-free (records, variants, scalars), so Marshal
   gives a canonical byte string for the digest.  No_sharing matters:
   default marshalling emits back-references for physically shared
   blocks (e.g. equal float constants folded together by the compiler
   in the machine presets), so a structurally equal record rebuilt
   elsewhere — decoded off the wire, say — would marshal to different
   bytes and silently miss the cache.  Without sharing the bytes depend
   only on the structure, so two equal requests always produce the same
   key; distinct machine configs or technique sets never collide with
   each other's results. *)
let cache_key (r : request) =
  Cache.digest
    (Marshal.to_string (r.req_source, r.req_options) [ Marshal.No_sharing ])

let now () = Unix.gettimeofday ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* ------------------------------------------------------------------ *)
(* Registry instruments (process-wide; handles resolved once)          *)
(* ------------------------------------------------------------------ *)

module M = Obs.Metrics

let m_submitted =
  M.counter M.global ~help:"jobs submitted" "service_jobs_submitted_total"

let m_completed =
  M.counter M.global ~help:"jobs completed" "service_jobs_completed_total"

let m_failed = M.counter M.global ~help:"jobs failed" "service_jobs_failed_total"

let m_timeout =
  M.counter M.global ~help:"jobs timed out" "service_jobs_timeout_total"

let m_cancelled =
  M.counter M.global ~help:"jobs cancelled" "service_jobs_cancelled_total"

let m_retries =
  M.counter M.global ~help:"ladder retries and requeues"
    "service_retries_total"

let m_rung rung =
  M.counter M.global ~help:"completed jobs, by producing rung"
    (Printf.sprintf "service_rung_%s_total" (rung_name rung))

let m_rung_full = m_rung Full
let m_rung_conservative = m_rung Conservative
let m_rung_passthrough = m_rung Passthrough

let m_degraded =
  M.counter M.global ~help:"jobs served passthrough because the breaker was open"
    "service_degraded_total"

let m_respawns =
  M.counter M.global ~help:"worker domains respawned by the supervisor"
    "service_worker_respawns_total"

let m_corrupt_dropped =
  M.counter M.global ~help:"cache entries dropped on digest mismatch"
    "service_cache_corrupt_dropped_total"

let m_breaker_opened =
  M.counter M.global ~help:"circuit breaker open transitions"
    "service_breaker_opened_total"

let m_replica_admitted =
  M.counter M.global ~help:"replicated cache entries admitted"
    "service_replica_admitted_total"

let m_replica_rejected =
  M.counter M.global
    ~help:"replicated cache entries rejected (checksum or capacity)"
    "service_replica_rejected_total"

let m_replicated_hits =
  M.counter M.global ~help:"cache hits served from a replicated entry"
    "service_replicated_hits_total"

let m_replica_gc =
  M.counter M.global
    ~help:"replicated cache entries dropped because ring ownership moved"
    "service_replica_gc_total"

let m_breaker_state =
  M.gauge M.global ~help:"breaker state (0 closed, 1 half-open, 2 open)"
    "service_breaker_state"

let m_queue_depth =
  M.gauge M.global ~help:"tickets waiting in the queue" "service_queue_depth"

let m_workers_busy =
  M.gauge M.global ~help:"worker domains currently running a job"
    "service_workers_busy"

let m_job_seconds =
  M.histogram M.global ~help:"job latency, submit to resolve"
    "service_job_seconds"

let m_phase_parse =
  M.histogram M.global ~help:"parse phase duration"
    "service_phase_parse_seconds"

let m_phase_restructure =
  M.histogram M.global ~help:"restructure phase duration"
    "service_phase_restructure_seconds"

let m_phase_validate =
  M.histogram M.global ~help:"validate phase duration"
    "service_phase_validate_seconds"

let m_phase_perfmodel =
  M.histogram M.global ~help:"performance-model phase duration"
    "service_phase_perfmodel_seconds"

let breaker_gauge_value = function
  | Br_closed -> 0.0
  | Br_half_open -> 1.0
  | Br_open -> 2.0

(* span + phase histogram around one pipeline stage *)
let timed name hist f =
  Obs.Trace.with_span name (fun _ ->
      let t0 = now () in
      let r = f () in
      M.observe hist (now () -. t0);
      r)

(* Idempotent: the supervisor may fail a wedged worker's ticket while the
   abandoned worker later finishes and tries to resolve it too; only the
   first resolution counts and wakes the submitter. *)
let resolve t ticket outcome =
  let won, watchers =
    with_lock ticket.tk_mutex (fun () ->
        match ticket.tk_outcome with
        | Some _ -> (false, [])
        | None ->
            ticket.tk_outcome <- Some outcome;
            Condition.broadcast ticket.tk_cond;
            let ws = ticket.tk_watchers in
            ticket.tk_watchers <- [];
            (true, ws))
  in
  (* watchers run outside the ticket mutex: they may take arbitrary
     locks of their own (the aio completion bridge posts into a
     scheduler) and must not be able to deadlock against [await] *)
  List.iter (fun w -> w outcome) (List.rev watchers);
  if won then begin
    let latency_ms = (now () -. ticket.tk_submitted) *. 1000.0 in
    (match outcome with
    | Done { payload; _ } -> (
        M.incr m_completed;
        match payload.p_rung with
        | Full -> M.incr m_rung_full
        | Conservative -> M.incr m_rung_conservative
        | Passthrough -> M.incr m_rung_passthrough)
    | Failed _ -> M.incr m_failed
    | Timeout -> M.incr m_timeout
    | Cancelled -> M.incr m_cancelled);
    M.observe m_job_seconds (latency_ms /. 1000.0);
    with_lock t.stat_mutex (fun () ->
        (match outcome with
        | Done { payload; _ } -> (
            t.completed <- t.completed + 1;
            match payload.p_rung with
            | Full -> t.rung_full <- t.rung_full + 1
            | Conservative -> t.rung_conservative <- t.rung_conservative + 1
            | Passthrough -> t.rung_passthrough <- t.rung_passthrough + 1)
        | Failed _ -> t.failed <- t.failed + 1
        | Timeout -> t.timed_out <- t.timed_out + 1
        | Cancelled -> t.cancelled <- t.cancelled + 1);
        Reservoir.add t.latencies latency_ms)
  end

(* ------------------------------------------------------------------ *)
(* The degradation ladder                                              *)
(* ------------------------------------------------------------------ *)

(* conservative rung: drop the techniques whose failures are the most
   intricate to diagnose — DOACROSS synchronization, generalized
   induction substitution, and the run-time-tested two-version loops —
   mirroring the paper's "generate code in a conservative way" fallback *)
let ladder_options rung (opts : Restructurer.Options.t) =
  match rung with
  | Full | Passthrough -> opts
  | Conservative ->
      {
        opts with
        Restructurer.Options.techniques =
          {
            opts.Restructurer.Options.techniques with
            Restructurer.Options.doacross = false;
            giv_substitution = false;
            runtime_dep_test = false;
          };
      }

type attempt =
  | A_done of payload
  | A_failed of string  (* retryable on a lower rung *)
  | A_permanent of string  (* no rung can help (e.g. parse error) *)
  | A_timeout

let flip_middle_byte s =
  let n = String.length s in
  if n = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = n / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
  end

let cache_put t key payload =
  Obs.Trace.with_span "cache_fill" @@ fun _ ->
  let digest = Cache.digest payload.p_text in
  let stored =
    if Fault.fire t.fault Fault.Cache_corrupt then
      { payload with p_text = flip_middle_byte payload.p_text }
    else payload
  in
  Cache.add t.cache key { e_digest = digest; e_payload = stored; e_replica = false };
  (* replication rides the clean payload/digest, never the chaos-corrupted
     bytes — and a hook failure must not fail the job that filled *)
  match t.on_cache_fill with
  | None -> ()
  | Some hook -> ( try hook ~key ~digest payload with _ -> ())

let cache_find t key =
  match Cache.find t.cache key with
  | None -> None
  | Some e ->
      if Cache.digest e.e_payload.p_text = e.e_digest then begin
        if e.e_replica then begin
          M.incr m_replicated_hits;
          with_lock t.stat_mutex (fun () ->
              t.replicated_hits <- t.replicated_hits + 1)
        end;
        Some e.e_payload
      end
      else begin
        (* bytes rotted while resident: drop, recompute fresh *)
        Cache.remove t.cache key;
        M.incr m_corrupt_dropped;
        with_lock t.stat_mutex (fun () ->
            t.corrupt_dropped <- t.corrupt_dropped + 1);
        None
      end

(* Admit a replicated entry pushed by a ring peer.  The origin's digest
   is recomputed here — a push corrupted in flight (or a malicious one)
   is rejected, never served.  Goes straight to [Cache.add], not
   [cache_put]: an admitted replica must not re-fire the replication
   hook, or entries would ping-pong around the ring forever. *)
let admit_replica t ~key ~digest payload =
  let ok =
    payload.p_rung = Full
    && Cache.digest payload.p_text = digest
  in
  if ok then begin
    Cache.add t.cache key { e_digest = digest; e_payload = payload; e_replica = true };
    M.incr m_replica_admitted;
    with_lock t.stat_mutex (fun () ->
        t.replica_admitted <- t.replica_admitted + 1)
  end
  else begin
    M.incr m_replica_rejected;
    with_lock t.stat_mutex (fun () ->
        t.replica_rejected <- t.replica_rejected + 1)
  end;
  ok

let backtrace_hint () =
  match String.split_on_char '\n' (Printexc.get_backtrace ()) with
  | [] | [ "" ] -> ""
  | lines ->
      let head =
        List.filteri (fun i _ -> i < 3) lines
        |> List.map String.trim
        |> List.filter (fun l -> l <> "")
      in
      if head = [] then "" else " [" ^ String.concat " ; " head ^ "]"

(* One attempt at one rung, under the exception barrier.  The only
   exception allowed to escape is the injected domain death — that is its
   entire point. *)
let execute_attempt t (ws : wstate) ticket rung : attempt =
  Obs.Trace.with_span "attempt" ~attrs:[ ("rung", rung_name rung) ]
  @@ fun asp ->
  let r = ticket.tk_request in
  let taint () =
    if not (Fault.stealth t.fault) then ticket.tk_tainted <- true
  in
  if Fault.fire t.fault Fault.Exec_delay then begin
    taint ();
    Unix.sleepf (Fault.delay_s t.fault)
  end;
  if Fault.fire t.fault Fault.Worker_kill then begin
    taint ();
    raise (Fault.Injected Fault.Worker_kill)
  end;
  let over_deadline () =
    ws.w_heartbeat <- now ();
    now () > ticket.tk_deadline
  in
  let a =
  try
    let prog =
      timed "parse" m_phase_parse (fun () ->
          Fortran.Parser.parse_program r.req_source)
    in
    match rung with
    | Passthrough ->
        (* parse-and-print identity: serial semantics by construction,
           so it needs no validation — the reliable floor of the ladder *)
        let text =
          Codegen.Emit.program_to_string
            ~target:r.req_options.Restructurer.Options.target prog
        in
        let cycles, words =
          timed "perfmodel" m_phase_perfmodel (fun () ->
              match
                Perfmodel.Model.evaluate
                  ~cfg:r.req_options.Restructurer.Options.machine prog
              with
              | run ->
                  ( Some run.Perfmodel.Model.cycles,
                    Some run.Perfmodel.Model.global_words )
              | exception _ -> (None, None))
        in
        A_done
          {
            p_name = r.req_name;
            p_text = text;
            p_reports = [];
            p_cycles = cycles;
            p_global_words = words;
            p_rung = Passthrough;
          }
    | Full | Conservative -> (
        if Fault.fire t.fault Fault.Exec_raise then begin
          taint ();
          raise (Fault.Injected Fault.Exec_raise)
        end;
        let opts = ladder_options rung r.req_options in
        (* no extra span: the driver opens its own "restructure" span as a
           child of this attempt *)
        let t0 = now () in
        let result =
          Restructurer.Driver.restructure ~interrupt:over_deadline
            ?memo:t.memo opts prog
        in
        M.observe m_phase_restructure (now () -. t0);
        if over_deadline () then A_timeout
        else
          let text =
            Codegen.Emit.program_to_string
              ~target:opts.Restructurer.Options.target
              result.Restructurer.Driver.program
          in
          (* under --validate, re-verify the emitted text (print ->
             (lift ->) reparse -> independent dependence re-analysis);
             unverified output is neither cached nor returned *)
          let rejected =
            if not opts.Restructurer.Options.validate then None
            else
              timed "validate" m_phase_validate (fun () ->
                  match
                    Validate.check_output
                      ~target:opts.Restructurer.Options.target text
                  with
                  | Ok [] -> None
                  | Ok issues ->
                      Some
                        (Printf.sprintf "validator rejected emitted code: %s"
                           (String.concat "; "
                              (List.map Validate.issue_to_string issues)))
                  | Error msg ->
                      Some
                        (Printf.sprintf "emitted code does not reparse: %s" msg))
          in
          let rejected =
            match rejected with
            | Some _ -> rejected
            | None ->
                if Fault.fire t.fault Fault.Validator_reject then begin
                  taint ();
                  Some "validator rejected emitted code: injected spurious \
                        rejection"
                end
                else None
          in
          match rejected with
          | Some msg -> A_failed msg
          | None ->
              let cycles, words =
                timed "perfmodel" m_phase_perfmodel (fun () ->
                    match
                      Perfmodel.Model.evaluate
                        ~cfg:opts.Restructurer.Options.machine
                        result.Restructurer.Driver.program
                    with
                    | run ->
                        ( Some run.Perfmodel.Model.cycles,
                          Some run.Perfmodel.Model.global_words )
                    | exception _ -> (None, None))
              in
              let payload =
                {
                  p_name = r.req_name;
                  p_text = text;
                  p_reports = result.Restructurer.Driver.reports;
                  p_cycles = cycles;
                  p_global_words = words;
                  p_rung = rung;
                }
              in
              (* only full-fidelity results are cached: a degraded result
                 must not outlive the incident that forced it *)
              if rung = Full then cache_put t (cache_key r) payload;
              A_done payload)
  with
  | Fault.Injected Fault.Worker_kill as e -> raise e
  | Restructurer.Driver.Interrupted -> A_timeout
  | Fortran.Parser.Error (msg, line) ->
      A_permanent (Printf.sprintf "parse error, line %d: %s" line msg)
  | e ->
      A_failed
        (Printf.sprintf "%s rung raised: %s%s" (rung_name rung)
           (Printexc.to_string e) (backtrace_hint ()))
  in
  Obs.Trace.attr asp "result"
    (match a with
    | A_done _ -> "done"
    | A_failed _ -> "failed"
    | A_permanent _ -> "permanent"
    | A_timeout -> "timeout");
  a

(* Walk the ladder.  Returns the final outcome plus whether the
   restructure stage (non-passthrough rungs) genuinely succeeded — the
   circuit breaker's health signal. *)
let run_ladder t ws ticket : outcome * bool =
  let rungs = [| Full; Conservative; Passthrough |] in
  let rec go idx =
    match execute_attempt t ws ticket rungs.(idx) with
    | A_done payload ->
        (Done { payload; cached = false }, payload.p_rung <> Passthrough)
    | A_permanent msg -> (Failed msg, false)
    | (A_failed _ | A_timeout) as a when idx + 1 < Array.length rungs ->
        with_lock t.stat_mutex (fun () -> t.retries <- t.retries + 1);
        M.incr m_retries;
        ignore a;
        (* exponential backoff, then a fresh deadline budget for the
           cheaper rung — the original deadline died with the attempt *)
        Obs.Trace.with_span "retry"
          ~attrs:[ ("next_rung", rung_name rungs.(idx + 1)) ]
          (fun _ -> Unix.sleepf (t.retry_base_s *. (2.0 ** float_of_int idx)));
        ticket.tk_deadline <- now () +. t.timeout_s;
        go (idx + 1)
    | A_failed msg -> (Failed msg, false)
    | A_timeout -> (Timeout, false)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

let breaker_route t =
  let route =
    with_lock t.stat_mutex (fun () ->
        match t.br_state with
        | Br_closed -> `Normal
        | Br_half_open -> `Degraded  (* a probe is already in flight *)
        | Br_open ->
            if now () -. t.br_opened_at >= t.breaker_cooldown_s then begin
              t.br_state <- Br_half_open;
              `Probe
            end
            else `Degraded)
  in
  M.set_gauge m_breaker_state (breaker_gauge_value t.br_state);
  route

let breaker_note t ~probe ~restructure_ok ~tainted =
  with_lock t.stat_mutex (fun () ->
      let opened_before = t.breaker_opened in
      (if tainted then begin
        (* chaos-injected failure: never counts against real capability;
           a tainted probe is inconclusive, so re-open and re-arm the
           timer rather than concluding anything *)
        if probe then begin
          t.br_state <- Br_open;
          t.br_opened_at <- now ()
        end
      end
      else if restructure_ok then begin
        t.br_failures <- 0;
        if probe then t.br_state <- Br_closed
      end
      else if probe then begin
        t.br_state <- Br_open;
        t.br_opened_at <- now ();
        t.breaker_opened <- t.breaker_opened + 1
      end
      else begin
        t.br_failures <- t.br_failures + 1;
        if t.br_state = Br_closed && t.br_failures >= t.breaker_threshold
        then begin
          t.br_state <- Br_open;
          t.br_opened_at <- now ();
          t.breaker_opened <- t.breaker_opened + 1;
          t.br_failures <- 0
        end
      end);
      if t.breaker_opened > opened_before then
        M.incr ~by:(t.breaker_opened - opened_before) m_breaker_opened;
      M.set_gauge m_breaker_state (breaker_gauge_value t.br_state))

(* ------------------------------------------------------------------ *)
(* Job lifecycle                                                       *)
(* ------------------------------------------------------------------ *)

let outcome_name = function
  | Done { cached = true; _ } -> "cached"
  | Done { cached = false; _ } -> "done"
  | Failed _ -> "failed"
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"

let process t (ws : wstate) ticket =
  (* the submitter's trace id rides the ticket across the queue; every
     span below lands in that job's trace even though it runs on a worker
     domain *)
  Obs.Trace.with_trace_id ticket.tk_trace @@ fun () ->
  Obs.Trace.with_span "job"
    ~attrs:[ ("name", ticket.tk_request.req_name) ]
  @@ fun jsp ->
  let finish outcome =
    Obs.Trace.attr jsp "outcome" (outcome_name outcome);
    resolve t ticket outcome
  in
  Obs.Trace.completed ~start_s:ticket.tk_submitted ~stop_s:(now ())
    "queue_wait";
  if ticket.tk_outcome <> None then ()  (* already resolved; defensive *)
  else if now () > ticket.tk_deadline then finish Cancelled
  else
    match
      Obs.Trace.with_span "cache_lookup" (fun csp ->
          let r = cache_find t (cache_key ticket.tk_request) in
          Obs.Trace.attr csp "hit" (if r = None then "false" else "true");
          r)
    with
    | Some payload -> finish (Done { payload; cached = true })
    | None -> (
        match breaker_route t with
        | `Degraded -> (
            (* restructure stage is sick: serve the serial floor directly,
               degraded but alive *)
            match execute_attempt t ws ticket Passthrough with
            | A_done payload ->
                M.incr m_degraded;
                with_lock t.stat_mutex (fun () ->
                    t.degraded <- t.degraded + 1);
                Obs.Trace.attr jsp "degraded" "true";
                finish (Done { payload; cached = false })
            | A_permanent msg | A_failed msg -> finish (Failed msg)
            | A_timeout -> finish Timeout)
        | (`Normal | `Probe) as route ->
            let outcome, restructure_ok = run_ladder t ws ticket in
            breaker_note t ~probe:(route = `Probe) ~restructure_ok
              ~tainted:ticket.tk_tainted;
            finish outcome)

let rec worker_loop t (slot : slot) (ws : wstate) =
  (* an orphaned worker (its slot was reassigned after a wedge) must
     stop competing for jobs *)
  if not (slot.s_state == ws) then ()
  else
    match Bounded_queue.pop t.queue with
    | None -> ()
    | Some ticket ->
        ws.w_ticket <- Some ticket;
        ws.w_heartbeat <- now ();
        M.set_gauge m_queue_depth (float_of_int (Bounded_queue.length t.queue));
        M.add_gauge m_workers_busy 1.0;
        Fun.protect
          ~finally:(fun () -> M.add_gauge m_workers_busy (-1.0))
          (fun () -> process t ws ticket);
        ws.w_ticket <- None;
        worker_loop t slot ws

let worker_main t slot ws =
  (try worker_loop t slot ws
   with _ -> ws.w_crashed <- true (* the barrier never lets real errors
                                     escape; this is a (injected) death *));
  ws.w_done <- true

let spawn_worker t slot =
  let ws =
    { w_ticket = None; w_heartbeat = now (); w_crashed = false; w_done = false }
  in
  slot.s_state <- ws;
  slot.s_domain <- Some (Domain.spawn (fun () -> worker_main t slot ws))

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

(* Fail-or-requeue the in-flight ticket of a worker that will never
   finish it.  One requeue per ticket: a job must not ping-pong between
   dying workers forever. *)
let salvage_ticket t ?(outcome = Failed "worker domain died while running \
                                         this job")
    (ws : wstate) =
  match ws.w_ticket with
  | None -> ()
  | Some ticket ->
      ws.w_ticket <- None;
      if
        ticket.tk_outcome = None
        && ticket.tk_requeues < 1
        && not t.stopping
      then begin
        ticket.tk_requeues <- ticket.tk_requeues + 1;
        ticket.tk_deadline <- now () +. t.timeout_s;
        M.incr m_retries;
        with_lock t.stat_mutex (fun () -> t.retries <- t.retries + 1);
        (* never block the one thread healing the pool on backpressure *)
        if not (Bounded_queue.try_push t.queue ticket) then
          resolve t ticket outcome
      end
      else resolve t ticket outcome

let supervisor_sweep t =
  with_lock t.pool_mutex (fun () ->
      Array.iter
        (fun slot ->
          let ws = slot.s_state in
          if ws.w_crashed then begin
            (* the domain has exited: join is immediate *)
            (match slot.s_domain with
            | Some d -> Domain.join d
            | None -> ());
            slot.s_domain <- None;
            salvage_ticket t ws;
            if not t.stopping then begin
              spawn_worker t slot;
              with_lock t.stat_mutex (fun () ->
                  t.respawns <- t.respawns + 1);
              M.incr m_respawns
            end
          end
          else if
            (* heartbeat wedge detection: alive but silent long past its
               job's deadline.  The domain cannot be killed, so it is
               orphaned (it exits on its own at the next fuel poll) and
               the slot respawned; its ticket resolves Timeout now *)
            t.wedge_after_s < infinity
            && (not ws.w_done)
            && ws.w_ticket <> None
            && now () -. ws.w_heartbeat > t.wedge_after_s
            &&
            match ws.w_ticket with
            | Some tk -> now () > tk.tk_deadline
            | None -> false
          then begin
            salvage_ticket t ~outcome:Timeout ws;
            (match slot.s_domain with
            | Some d -> t.orphans <- (d, ws) :: t.orphans
            | None -> ());
            slot.s_domain <- None;
            if not t.stopping then begin
              spawn_worker t slot;
              with_lock t.stat_mutex (fun () ->
                  t.respawns <- t.respawns + 1);
              M.incr m_respawns
            end
          end)
        t.slots;
      (* an orphan that later crashes still must not leak its ticket *)
      List.iter
        (fun (_, ws) -> if ws.w_crashed then salvage_ticket t ws)
        t.orphans)

let supervisor_loop t =
  while not t.stopping do
    Unix.sleepf 0.002;
    supervisor_sweep t
  done

(* ------------------------------------------------------------------ *)
(* Construction / client API                                           *)
(* ------------------------------------------------------------------ *)

let create ?(queue_capacity = 64) ?(timeout_ms = 0.0) ?(oversubscribe = false)
    ?(fault = Fault.none) ?(retry_base_ms = 1.0) ?(breaker_threshold = 5)
    ?(breaker_cooldown_ms = 250.0) ?(wedge_after_ms = 0.0)
    ?(latency_reservoir = 1024) ?(max_source_bytes = 0) ?(shard_id = "")
    ?(memo_capacity = 1024) ?on_cache_fill ~workers ~cache_capacity () =
  Printexc.record_backtrace true;
  let workers =
    if oversubscribe then max 1 workers
    else max 1 (min workers (Domain.recommended_domain_count ()))
  in
  let t =
    {
      queue = Bounded_queue.create ~capacity:queue_capacity;
      cache = Cache.create ~capacity:cache_capacity;
      memo =
        (if memo_capacity <= 0 then None
         else
           Some
             (Restructurer.Driver.create_memo ~capacity:memo_capacity
                ~corrupt:(fun () -> Fault.fire fault Fault.Memo_corrupt)
                ()));
      fault;
      shard_id;
      on_cache_fill;
      max_source_bytes = max 0 max_source_bytes;
      timeout_s =
        (if timeout_ms > 0.0 then timeout_ms /. 1000.0 else infinity);
      retry_base_s = Float.max 0.0 retry_base_ms /. 1000.0;
      breaker_threshold = max 1 breaker_threshold;
      breaker_cooldown_s = Float.max 0.0 breaker_cooldown_ms /. 1000.0;
      wedge_after_s =
        (if wedge_after_ms > 0.0 then wedge_after_ms /. 1000.0 else infinity);
      started_at = now ();
      stat_mutex = Mutex.create ();
      pool_mutex = Mutex.create ();
      slots = [||];
      orphans = [];
      supervisor = None;
      stopping = false;
      shut = false;
      submitted = 0;
      completed = 0;
      failed = 0;
      timed_out = 0;
      cancelled = 0;
      retries = 0;
      rung_full = 0;
      rung_conservative = 0;
      rung_passthrough = 0;
      degraded = 0;
      respawns = 0;
      corrupt_dropped = 0;
      breaker_opened = 0;
      replica_admitted = 0;
      replica_rejected = 0;
      replicated_hits = 0;
      replica_gc = 0;
      replication_source = None;
      br_state = Br_closed;
      br_failures = 0;
      br_opened_at = 0.0;
      latencies = Reservoir.create ~capacity:(max 1 latency_reservoir) ();
    }
  in
  t.slots <-
    Array.init workers (fun _ ->
        let slot =
          {
            s_domain = None;
            s_state =
              {
                w_ticket = None;
                w_heartbeat = now ();
                w_crashed = false;
                w_done = false;
              };
          }
        in
        spawn_worker t slot;
        slot);
  t.supervisor <- Some (Domain.spawn (fun () -> supervisor_loop t));
  t

let effective_workers t = Array.length t.slots

let source_too_large t request =
  t.max_source_bytes > 0 && String.length request.req_source > t.max_source_bytes

let oversize_message t request =
  Printf.sprintf "source too large: %d bytes exceeds the %d-byte limit"
    (String.length request.req_source)
    t.max_source_bytes

let make_ticket ?(trace = 0) t request =
  let submitted = now () in
  {
    tk_request = request;
    tk_trace =
      (if trace <> 0 then trace
       else if Obs.Trace.enabled () then Obs.Trace.fresh_trace_id ()
       else 0);
    tk_submitted = submitted;
    tk_deadline = submitted +. t.timeout_s;
    tk_mutex = Mutex.create ();
    tk_cond = Condition.create ();
    tk_outcome = None;
    tk_tainted = false;
    tk_requeues = 0;
    tk_watchers = [];
  }

let submit ?trace t request =
  let ticket = make_ticket ?trace t request in
  M.incr m_submitted;
  with_lock t.stat_mutex (fun () -> t.submitted <- t.submitted + 1);
  if source_too_large t request then
    (* request hygiene: reject before the source ever reaches a parser *)
    resolve t ticket (Failed (oversize_message t request))
  else if not (Bounded_queue.push t.queue ticket) then
    resolve t ticket Cancelled
  else
    M.set_gauge m_queue_depth (float_of_int (Bounded_queue.length t.queue));
  ticket

(* Non-blocking admission for front-ends that must shed load instead of
   waiting on backpressure: [None] means the queue had no room (or was
   closed) and nothing was submitted. *)
let try_submit ?trace t request =
  if source_too_large t request then begin
    let ticket = make_ticket ?trace t request in
    M.incr m_submitted;
    with_lock t.stat_mutex (fun () -> t.submitted <- t.submitted + 1);
    resolve t ticket (Failed (oversize_message t request));
    Some ticket
  end
  else begin
    let ticket = make_ticket ?trace t request in
    if not (Bounded_queue.try_push t.queue ticket) then None
    else begin
      M.incr m_submitted;
      with_lock t.stat_mutex (fun () -> t.submitted <- t.submitted + 1);
      M.set_gauge m_queue_depth (float_of_int (Bounded_queue.length t.queue));
      Some ticket
    end
  end

let await ticket =
  Mutex.lock ticket.tk_mutex;
  let rec wait () =
    match ticket.tk_outcome with
    | Some o -> o
    | None ->
        Condition.wait ticket.tk_cond ticket.tk_mutex;
        wait ()
  in
  let o = wait () in
  Mutex.unlock ticket.tk_mutex;
  o

(* Non-blocking completion hook: the fiber front-end registers one of
   these and suspends, instead of parking an OS thread in [await].  If
   the ticket is already resolved (a cache hit resolves synchronously
   inside submit) the callback fires immediately on the caller. *)
let on_resolve ticket f =
  let immediate =
    with_lock ticket.tk_mutex (fun () ->
        match ticket.tk_outcome with
        | Some o -> Some o
        | None ->
            ticket.tk_watchers <- f :: ticket.tk_watchers;
            None)
  in
  match immediate with Some o -> f o | None -> ()

let run t request = await (submit t request)

let breaker_state_name t =
  match t.br_state with
  | Br_closed -> "closed"
  | Br_open -> "open"
  | Br_half_open -> "half-open"

let set_replication_source t f = t.replication_source <- Some f

(* every resident cache entry as (key, digest, payload): what the
   replicator re-pushes when the ring changes.  Rides [Cache.export],
   so recency is untouched. *)
let export_cache t =
  Cache.export t.cache
  |> List.map (fun (key, e) -> (key, e.e_digest, e.e_payload))

(* Replica garbage collection, fired by the cluster replicator on a
   topology change: an entry admitted as a replica whose key this shard
   no longer backs under the new ring is dead weight — its reads now
   route elsewhere, and keeping it would let stale bytes shadow a future
   legitimate re-admission.  Only replica-flagged entries are touched;
   locally computed results are this shard's own and stay. *)
let gc_replicas t ~keep =
  let dropped =
    List.fold_left
      (fun n (key, e) ->
        if e.e_replica && not (keep key) then begin
          Cache.remove t.cache key;
          n + 1
        end
        else n)
      0 (Cache.export t.cache)
  in
  if dropped > 0 then begin
    M.incr ~by:dropped m_replica_gc;
    with_lock t.stat_mutex (fun () -> t.replica_gc <- t.replica_gc + dropped)
  end;
  dropped

let memo_stats t = Option.map Restructurer.Driver.memo_stats t.memo

let stats t =
  let replica_pushed, replica_skipped_down =
    match t.replication_source with Some f -> f () | None -> (0, 0)
  in
  let memo_hits, memo_misses, memo_entries =
    match memo_stats t with
    | None -> (0, 0, 0)
    | Some m ->
        (m.Restructurer.Memo.st_hits, m.Restructurer.Memo.st_misses,
         m.Restructurer.Memo.st_size)
  in
  with_lock t.stat_mutex (fun () ->
      Stats.make ~shard_id:t.shard_id ~submitted:t.submitted
        ~completed:t.completed
        ~failed:t.failed ~timed_out:t.timed_out ~cancelled:t.cancelled
        ~retries:t.retries ~rung_full:t.rung_full
        ~rung_conservative:t.rung_conservative
        ~rung_passthrough:t.rung_passthrough ~degraded:t.degraded
        ~respawns:t.respawns ~corrupt_dropped:t.corrupt_dropped
        ~breaker_opened:t.breaker_opened
        ~replica_admitted:t.replica_admitted
        ~replica_rejected:t.replica_rejected
        ~replicated_hits:t.replicated_hits ~replica_pushed
        ~replica_skipped_down ~replica_gc:t.replica_gc
        ~memo_hits ~memo_misses ~memo_entries
        ~breaker_state:(breaker_state_name t)
        ~faults_injected:(Fault.total_fired t.fault)
        ~queue_high_water:(Bounded_queue.high_water t.queue)
        ~cache:(Cache.stats t.cache)
        ~latencies_ms:(Reservoir.sample t.latencies)
        ~latency_count:(Reservoir.count t.latencies)
        ~max_latency_ms:(Reservoir.max_value t.latencies)
        ~wall_s:(now () -. t.started_at) ())

(* Deterministic drain, reused verbatim by the SIGINT/SIGTERM path of
   [cedard --serve]:

   1. close the queue — every submit from this instant on resolves
      [Cancelled], so "did my late submit get served?" has one answer;
   2. stop and join the supervisor;
   3. join the workers — they finish their in-flight job and whatever
      was already queued before the close, then exit on the drained
      queue;
   4. salvage anything dead workers left behind;
   5. flush the final statistics.

   Idempotent: a second caller (e.g. a signal racing the normal exit
   path) just reads the statistics without re-running the drain. *)
let shutdown t =
  let first =
    with_lock t.pool_mutex (fun () ->
        if t.shut then false
        else begin
          t.shut <- true;
          true
        end)
  in
  if not first then stats t
  else begin
  Bounded_queue.close t.queue;
  with_lock t.pool_mutex (fun () -> t.stopping <- true);
  (match t.supervisor with
  | Some d ->
      Domain.join d;
      t.supervisor <- None
  | None -> ());
  Array.iter
    (fun slot ->
      match slot.s_domain with
      | Some d ->
          Domain.join d;
          slot.s_domain <- None
      | None -> ())
    t.slots;
  (* the pool is gone: salvage what the dead left behind — crashed
     workers' in-flight tickets, then whatever is still queued (possible
     when every worker died before the close) *)
  Array.iter
    (fun slot -> if slot.s_state.w_crashed then salvage_ticket t slot.s_state)
    t.slots;
  let rec drain () =
    match Bounded_queue.pop t.queue with
    | Some ticket ->
        resolve t ticket Cancelled;
        drain ()
    | None -> ()
  in
  drain ();
  List.iter
    (fun (d, ws) ->
      Domain.join d;
      if ws.w_crashed then salvage_ticket t ws)
    t.orphans;
  t.orphans <- [];
  stats t
  end
