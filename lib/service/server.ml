(* Worker-pool restructuring server.  See server.mli for the contract.

   Concurrency structure: submitters and workers meet at a
   Bounded_queue of tickets; each ticket carries its own mutex/condition
   pair for the await rendezvous; service-wide counters live behind one
   stats mutex.  Workers poll their job's deadline between loop nests
   (via Driver.restructure's [interrupt] hook), so a runaway job is
   abandoned at the next nest boundary rather than wedging its domain. *)

type request = {
  req_name : string;
  req_source : string;
  req_options : Restructurer.Options.t;
}

type payload = {
  p_name : string;
  p_text : string;
  p_reports : Restructurer.Driver.loop_report list;
  p_cycles : float option;
  p_global_words : float option;
}

type outcome =
  | Done of { payload : payload; cached : bool }
  | Failed of string
  | Timeout
  | Cancelled

type ticket = {
  tk_request : request;
  tk_submitted : float;
  tk_deadline : float;
  tk_mutex : Mutex.t;
  tk_cond : Condition.t;
  mutable tk_outcome : outcome option;
}

type t = {
  queue : ticket Bounded_queue.t;
  cache : payload Cache.t;
  timeout_s : float;  (** infinity = no deadline *)
  started_at : float;
  stat_mutex : Mutex.t;
  mutable workers : unit Domain.t list;
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable timed_out : int;
  mutable cancelled : int;
  mutable latencies_ms : float list;
}

(* Options.t is closure-free (records, variants, scalars), so Marshal
   gives a canonical byte string for the digest.  Two equal requests
   always produce the same key; distinct machine configs or technique
   sets never collide with each other's results. *)
let cache_key (r : request) =
  Cache.digest (Marshal.to_string (r.req_source, r.req_options) [])

let now () = Unix.gettimeofday ()

let resolve t ticket outcome =
  let latency_ms = (now () -. ticket.tk_submitted) *. 1000.0 in
  Mutex.lock t.stat_mutex;
  (match outcome with
  | Done _ -> t.completed <- t.completed + 1
  | Failed _ -> t.failed <- t.failed + 1
  | Timeout -> t.timed_out <- t.timed_out + 1
  | Cancelled -> t.cancelled <- t.cancelled + 1);
  t.latencies_ms <- latency_ms :: t.latencies_ms;
  Mutex.unlock t.stat_mutex;
  Mutex.lock ticket.tk_mutex;
  ticket.tk_outcome <- Some outcome;
  Condition.broadcast ticket.tk_cond;
  Mutex.unlock ticket.tk_mutex

let execute t ticket =
  let r = ticket.tk_request in
  let over_deadline () = now () > ticket.tk_deadline in
  try
    let prog = Fortran.Parser.parse_program r.req_source in
    let result =
      Restructurer.Driver.restructure ~interrupt:over_deadline r.req_options
        prog
    in
    if over_deadline () then Timeout
    else
      let text =
        Fortran.Printer.program_to_string result.Restructurer.Driver.program
      in
      (* under --validate, re-verify the emitted text (print → reparse →
         independent dependence re-analysis); unverified output is
         neither cached nor returned *)
      let rejected =
        if not r.req_options.Restructurer.Options.validate then None
        else
          match Validate.check_source text with
          | Ok [] -> None
          | Ok issues ->
              Some
                (Printf.sprintf "validator rejected emitted code: %s"
                   (String.concat "; "
                      (List.map Validate.issue_to_string issues)))
          | Error msg ->
              Some (Printf.sprintf "emitted code does not reparse: %s" msg)
      in
      match rejected with
      | Some msg -> Failed msg
      | None ->
      let cycles, words =
        match
          Perfmodel.Model.evaluate
            ~cfg:r.req_options.Restructurer.Options.machine
            result.Restructurer.Driver.program
        with
        | run ->
            ( Some run.Perfmodel.Model.cycles,
              Some run.Perfmodel.Model.global_words )
        | exception _ -> (None, None)
      in
      let payload =
        {
          p_name = r.req_name;
          p_text = text;
          p_reports = result.Restructurer.Driver.reports;
          p_cycles = cycles;
          p_global_words = words;
        }
      in
      Cache.add t.cache (cache_key r) payload;
      Done { payload; cached = false }
  with
  | Restructurer.Driver.Interrupted -> Timeout
  | Fortran.Parser.Error (msg, line) ->
      Failed (Printf.sprintf "parse error, line %d: %s" line msg)
  | e -> Failed (Printexc.to_string e)

let process t ticket =
  let outcome =
    if now () > ticket.tk_deadline then Cancelled
    else
      match Cache.find t.cache (cache_key ticket.tk_request) with
      | Some payload -> Done { payload; cached = true }
      | None -> execute t ticket
  in
  resolve t ticket outcome

let rec worker_loop t =
  match Bounded_queue.pop t.queue with
  | None -> ()
  | Some ticket ->
      process t ticket;
      worker_loop t

let create ?(queue_capacity = 64) ?(timeout_ms = 0.0) ?(oversubscribe = false)
    ~workers ~cache_capacity () =
  let workers =
    if oversubscribe then max 1 workers
    else max 1 (min workers (Domain.recommended_domain_count ()))
  in
  let t =
    {
      queue = Bounded_queue.create ~capacity:queue_capacity;
      cache = Cache.create ~capacity:cache_capacity;
      timeout_s =
        (if timeout_ms > 0.0 then timeout_ms /. 1000.0 else infinity);
      started_at = now ();
      stat_mutex = Mutex.create ();
      workers = [];
      submitted = 0;
      completed = 0;
      failed = 0;
      timed_out = 0;
      cancelled = 0;
      latencies_ms = [];
    }
  in
  t.workers <-
    List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let effective_workers t = List.length t.workers

let submit t request =
  let submitted = now () in
  let ticket =
    {
      tk_request = request;
      tk_submitted = submitted;
      tk_deadline = submitted +. t.timeout_s;
      tk_mutex = Mutex.create ();
      tk_cond = Condition.create ();
      tk_outcome = None;
    }
  in
  Mutex.lock t.stat_mutex;
  t.submitted <- t.submitted + 1;
  Mutex.unlock t.stat_mutex;
  if not (Bounded_queue.push t.queue ticket) then
    resolve t ticket Cancelled;
  ticket

let await ticket =
  Mutex.lock ticket.tk_mutex;
  let rec wait () =
    match ticket.tk_outcome with
    | Some o -> o
    | None ->
        Condition.wait ticket.tk_cond ticket.tk_mutex;
        wait ()
  in
  let o = wait () in
  Mutex.unlock ticket.tk_mutex;
  o

let run t request = await (submit t request)

let stats t =
  Mutex.lock t.stat_mutex;
  let s =
    Stats.make ~submitted:t.submitted ~completed:t.completed ~failed:t.failed
      ~timed_out:t.timed_out ~cancelled:t.cancelled
      ~queue_high_water:(Bounded_queue.high_water t.queue)
      ~cache:(Cache.stats t.cache) ~latencies_ms:t.latencies_ms
      ~wall_s:(now () -. t.started_at)
  in
  Mutex.unlock t.stat_mutex;
  s

let shutdown t =
  Bounded_queue.close t.queue;
  List.iter Domain.join t.workers;
  t.workers <- [];
  stats t
