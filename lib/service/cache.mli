(** Content-addressed LRU result cache.

    Keys are digests of the full job content — source text plus every
    option that can change the output (technique set, machine
    configuration, limits) — so two requests share an entry exactly when
    the restructurer would produce byte-identical results for both.
    Bounded: inserting beyond [capacity] evicts the least-recently-used
    entry.  Thread-safe; every operation counts toward the hit/miss/
    eviction statistics. *)

type 'a t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** currently resident *)
}

val create : capacity:int -> 'a t
(** A cache holding at most [capacity] entries; [capacity = 0] disables
    caching (every lookup misses, nothing is stored).
    @raise Invalid_argument when [capacity < 0] *)

val digest : string -> string
(** Hex digest of an arbitrary content string — the address. *)

val find : 'a t -> string -> 'a option
(** Lookup by key, refreshing the entry's recency.  Counts a hit or a
    miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or overwrite) an entry, evicting the LRU entry if the cache
    is full. *)

val remove : 'a t -> string -> unit
(** Drop an entry (no-op when absent).  Used by the server when an
    entry fails its integrity check; not counted as an eviction. *)

val export : 'a t -> (string * 'a) list
(** Snapshot of every resident [(key, value)] pair, in no particular
    order.  Does {e not} refresh recency or count hits — exporting the
    warm set for replication must not perturb the LRU order. *)

val stats : 'a t -> stats

val hit_rate : stats -> float
(** Hits over lookups, in [0,1]; 0 when no lookups happened. *)
