(* Algorithm R reservoir sampling.  See reservoir.mli. *)

type t = {
  rng : Random.State.t;
  sample : float array;
  mutable filled : int;  (* slots in use, <= capacity *)
  mutable count : int;  (* values ever offered *)
  mutable max_v : float;
}

let create ?(seed = 42) ~capacity () =
  if capacity < 1 then invalid_arg "Reservoir.create: capacity < 1";
  {
    rng = Random.State.make [| seed; capacity |];
    sample = Array.make capacity 0.0;
    filled = 0;
    count = 0;
    max_v = 0.0;
  }

let add r x =
  let n = r.count in
  r.count <- n + 1;
  if x > r.max_v then r.max_v <- x;
  let k = Array.length r.sample in
  if r.filled < k then begin
    r.sample.(r.filled) <- x;
    r.filled <- r.filled + 1
  end
  else
    let j = Random.State.int r.rng (n + 1) in
    if j < k then r.sample.(j) <- x

let count r = r.count
let max_value r = r.max_v
let sample r = Array.to_list (Array.sub r.sample 0 r.filled)
