(* Seeded, deterministic fault injector.  See fault.mli.

   Determinism without coordination: each site keeps its own atomic draw
   counter, and decision [n] for a site is a pure function of
   (seed, site, n) via a splitmix64-style mixer — so the schedule of
   decisions per site is reproducible for a given seed no matter how
   worker domains interleave, and a single-worker run is fully
   deterministic end to end. *)

type site =
  | Exec_raise  (** exception from deep inside the restructure stage *)
  | Exec_delay  (** artificial latency before restructuring *)
  | Worker_kill  (** domain death: escapes the job's exception barrier *)
  | Cache_corrupt  (** flip a byte of the payload text stored in the cache *)
  | Memo_corrupt  (** poison a nest entry as the restructurer memo stores it *)
  | Validator_reject  (** spurious rejection of a correct result *)
  | Accept_drop  (** close an accepted connection before reading anything *)
  | Read_stall  (** stall the server's frame reader (client sees latency) *)
  | Trunc_write  (** cut a reply frame short and drop the connection *)
  | Garbage_frame  (** replace a reply frame with bytes that decode to junk *)

exception Injected of site
(** Raised by the server at a site the injector told to fire. *)

let all_sites =
  [
    Exec_raise; Exec_delay; Worker_kill; Cache_corrupt; Memo_corrupt;
    Validator_reject; Accept_drop; Read_stall; Trunc_write; Garbage_frame;
  ]

let site_index = function
  | Exec_raise -> 0
  | Exec_delay -> 1
  | Worker_kill -> 2
  | Cache_corrupt -> 3
  | Memo_corrupt -> 4
  | Validator_reject -> 5
  | Accept_drop -> 6
  | Read_stall -> 7
  | Trunc_write -> 8
  | Garbage_frame -> 9

let n_sites = List.length all_sites

let site_name = function
  | Exec_raise -> "raise"
  | Exec_delay -> "delay"
  | Worker_kill -> "kill"
  | Cache_corrupt -> "corrupt"
  | Memo_corrupt -> "memo-corrupt"
  | Validator_reject -> "reject"
  | Accept_drop -> "accept-drop"
  | Read_stall -> "read-stall"
  | Trunc_write -> "trunc-write"
  | Garbage_frame -> "garbage-frame"

let site_of_name = function
  | "raise" -> Some Exec_raise
  | "delay" -> Some Exec_delay
  | "kill" -> Some Worker_kill
  | "corrupt" -> Some Cache_corrupt
  | "memo-corrupt" -> Some Memo_corrupt
  | "reject" -> Some Validator_reject
  | "accept-drop" -> Some Accept_drop
  | "read-stall" -> Some Read_stall
  | "trunc-write" -> Some Trunc_write
  | "garbage-frame" -> Some Garbage_frame
  | _ -> None

(* the in-process job-lifecycle sites, as opposed to the network sites a
   Net.Server attacks on the wire; "all" in a spec means these, so the
   historic "--chaos all=0.1" exercises exactly the sites a traffic run
   can reach, and "net=P" arms the wire sites *)
let service_sites =
  [
    Exec_raise; Exec_delay; Worker_kill; Cache_corrupt; Memo_corrupt;
    Validator_reject;
  ]

let net_sites = [ Accept_drop; Read_stall; Trunc_write; Garbage_frame ]

type t = {
  seed : int;
  stealth : bool;
  delay_s : float;
  probs : float array;  (* indexed by site_index; 0 = site disabled *)
  draws : int Atomic.t array;
  fired : int Atomic.t array;
}

let none =
  {
    seed = 0;
    stealth = false;
    delay_s = 0.0;
    probs = Array.make n_sites 0.0;
    draws = Array.init n_sites (fun _ -> Atomic.make 0);
    fired = Array.init n_sites (fun _ -> Atomic.make 0);
  }

let create ?(seed = 42) ?(stealth = false) ?(delay_ms = 5.0) sites =
  let probs = Array.make n_sites 0.0 in
  List.iter
    (fun (s, p) ->
      if p < 0.0 || p > 1.0 then
        invalid_arg "Fault.create: probability outside [0,1]";
      probs.(site_index s) <- p)
    sites;
  {
    seed;
    stealth;
    delay_s = Float.max 0.0 delay_ms /. 1000.0;
    probs;
    draws = Array.init n_sites (fun _ -> Atomic.make 0);
    fired = Array.init n_sites (fun _ -> Atomic.make 0);
  }

let active t = Array.exists (fun p -> p > 0.0) t.probs
let stealth t = t.stealth
let delay_s t = t.delay_s
let set_prob t site p = t.probs.(site_index site) <- p

(* injection activity is also visible through the metrics registry; the
   handles are resolved once (fire runs on every attempt's hot path) *)
let m_draws =
  Obs.Metrics.counter Obs.Metrics.global
    ~help:"fault-site decisions drawn" "service_fault_draws_total"

let m_fired_by_site =
  Array.of_list
    (List.map
       (fun s ->
         Obs.Metrics.counter Obs.Metrics.global
           ~help:"injected faults fired, by site"
           (Printf.sprintf "service_fault_fired_%s_total" (site_name s)))
       all_sites)

(* splitmix64 finalizer over (seed, site, draw number) *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float ~seed ~site ~n =
  let z =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int seed) 0x9e3779b97f4a7c15L)
         (Int64.of_int ((site * 0x3c6ef372) + n)))
  in
  (* top 53 bits to [0,1) *)
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let fire t site =
  let i = site_index site in
  let p = t.probs.(i) in
  if p <= 0.0 then false
  else begin
    let n = Atomic.fetch_and_add t.draws.(i) 1 in
    Obs.Metrics.incr m_draws;
    let hit = unit_float ~seed:t.seed ~site:i ~n < p in
    if hit then begin
      Atomic.incr t.fired.(i);
      Obs.Metrics.incr m_fired_by_site.(i)
    end;
    hit
  end

let log t =
  List.map
    (fun s ->
      let i = site_index s in
      (s, Atomic.get t.draws.(i), Atomic.get t.fired.(i)))
    all_sites

let total_fired t =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.fired

let log_to_string t =
  let lines =
    List.filter_map
      (fun (s, draws, fired) ->
        if t.probs.(site_index s) <= 0.0 && draws = 0 then None
        else
          Some
            (Printf.sprintf "  %-13s p=%-5.2f draws %-6d fired %d" (site_name s)
               t.probs.(site_index s) draws fired))
      (log t)
  in
  match lines with
  | [] -> "fault injector: inactive"
  | lines ->
      Printf.sprintf "fault injector: seed %d%s\n%s" t.seed
        (if t.stealth then ", stealth" else "")
        (String.concat "\n" lines)

(* spec grammar: "raise=0.1,delay=0.05,kill=0.01,corrupt=0.1,reject=0.1";
   "all=P" sets every in-process site at once, "net=P" every wire site *)
let parse_spec spec =
  let parts =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> (
        match String.split_on_char '=' part with
        | [ name; p ] -> (
            match float_of_string_opt (String.trim p) with
            | None -> Error (Printf.sprintf "bad probability %S" p)
            | Some p when p < 0.0 || p > 1.0 ->
                Error (Printf.sprintf "probability %g outside [0,1]" p)
            | Some p -> (
                match String.trim name with
                | "all" ->
                    go
                      (List.rev_append
                         (List.map (fun s -> (s, p)) service_sites)
                         acc)
                      rest
                | "net" ->
                    go
                      (List.rev_append (List.map (fun s -> (s, p)) net_sites)
                         acc)
                      rest
                | name -> (
                    match site_of_name name with
                    | Some s -> go ((s, p) :: acc) rest
                    | None ->
                        Error
                          (Printf.sprintf
                             "unknown fault site %S (want raise, delay, kill, \
                              corrupt, memo-corrupt, reject, accept-drop, \
                              read-stall, trunc-write, garbage-frame, all, or \
                              net)"
                             name))))
        | _ -> Error (Printf.sprintf "bad fault spec part %S (want site=prob)" part)
      )
  in
  go [] parts
